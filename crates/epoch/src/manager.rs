use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use incll_pmem::{superblock, FlushDomainScope, PArena};

/// A callback run at every epoch boundary with the new epoch number.
pub type AdvanceHook = Box<dyn Fn(u64) + Send + Sync>;

/// What an [`EpochManager`] does at each epoch boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochOptions {
    /// Flush at each advance — the checkpoint step. A single-domain
    /// manager flushes the whole cache ([`PArena::global_flush`]); a
    /// multi-domain manager issues a scoped flush
    /// ([`PArena::flush_domain`]) covering only the advancing domain's
    /// dirty lines (plus shared lines). On for the durable system; off for
    /// the MT+ baseline (which has the barrier but no persistence).
    pub flush_on_advance: bool,
    /// Persist the epoch counters in the superblock (`clwb` + `sfence`).
    /// On for the durable system; off for transient baselines.
    pub durable_epoch: bool,
}

impl EpochOptions {
    /// Options for the durable (INCLL) system: flush + durable counter.
    pub fn durable() -> Self {
        EpochOptions {
            flush_on_advance: true,
            durable_epoch: true,
        }
    }

    /// Options for the transient MT+ baseline: barrier only.
    pub fn transient() -> Self {
        EpochOptions {
            flush_on_advance: false,
            durable_epoch: false,
        }
    }
}

/// Per-registered-thread state: one pin word per domain.
///
/// `states[d]` is 0 when the thread is quiescent in domain `d` (no live
/// guard) and 1 when it is inside a guard; `wrote[d]` records the domain's
/// advance sequence number at the thread's last **write** pin (the
/// dirty-work signal — read pins leave nothing to checkpoint); `dead`
/// marks deregistered threads the advancer must skip.
struct SlotRow {
    states: Vec<AtomicU64>,
    wrote: Vec<AtomicU64>,
    dead: AtomicBool,
}

/// The per-domain half of the manager: its own epoch counter, quiescence
/// flag, parking, advance serialisation, and hook lists.
struct DomainState {
    /// Source of truth for the running system; mirrors the durable counter.
    epoch: AtomicU64,
    /// First epoch of this execution (recovery sets it past failed epochs).
    exec: AtomicU64,
    /// Set while an advance is quiescing/working; gates `pin`.
    advancing: AtomicBool,
    /// Serialises this domain's advancers.
    advance_lock: Mutex<()>,
    /// Parking for threads that hit this domain's barrier mid-advance.
    park_lock: Mutex<()>,
    park_cv: Condvar,
    /// Hooks run after quiescence but *before* the checkpoint flush, with
    /// the finishing epoch (compaction sweeps live here: their writes are
    /// covered by the very flush that follows).
    pre_flush_hooks: Mutex<Vec<AdvanceHook>>,
    /// Hooks run after the durable epoch bump, with the new epoch.
    hooks: Mutex<Vec<AdvanceHook>>,
    /// Completed advances of this domain (the dirty-work clock).
    seq: AtomicU64,
    /// Lifetime bytes externally logged under this domain
    /// ([`EpochManager::note_logged_bytes`]) — the write-rate signal an
    /// adaptive cadence controller diffs per observation window.
    bytes_logged: AtomicU64,
    /// `bytes_logged` snapshot at this domain's last completed advance.
    boundary_bytes: AtomicU64,
    /// Advances completed / ticks skipped as clean (driver-reported).
    advances_fired: AtomicU64,
    advances_skipped: AtomicU64,
}

/// A snapshot of one domain's write-rate counters
/// ([`EpochManager::domain_counters`]): the observations an adaptive
/// checkpoint-cadence controller steers by, and what
/// `Store::shard_stats` surfaces per shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DomainCounters {
    /// Lifetime bytes externally logged under this domain.
    pub bytes_logged: u64,
    /// Bytes logged since the domain's last completed advance — the
    /// domain's *current* dirty-work estimate.
    pub bytes_since_boundary: u64,
    /// Advances this domain completed.
    pub advances_fired: u64,
    /// Driver ticks skipped because the domain was clean.
    pub advances_skipped: u64,
}

struct Shared {
    arena: PArena,
    domains: Vec<DomainState>,
    slots: Mutex<Vec<Arc<SlotRow>>>,
    options: EpochOptions,
}

/// The epoch authority (see crate docs): an array of independent epoch
/// **domains**, one per keyspace shard.
///
/// A single-domain manager (the default, [`EpochManager::new`]) behaves
/// exactly like the paper's global epoch: one counter, one barrier, a
/// whole-cache flush per advance. [`EpochManager::with_domains`] gives
/// every shard its own counter, quiescence set and advance path, so a hot
/// shard can checkpoint on a tight cadence while cold shards advance
/// lazily — and an advance only stalls threads pinned in *that* domain.
///
/// Cloneable handle; all clones share state.
#[derive(Clone)]
pub struct EpochManager {
    shared: Arc<Shared>,
}

impl EpochManager {
    /// Creates a single-domain manager over `arena` (the paper's global
    /// epoch).
    ///
    /// With [`EpochOptions::durable`] the starting epoch is read from the
    /// superblock (which must be formatted); otherwise it starts at 1.
    pub fn new(arena: PArena, options: EpochOptions) -> Self {
        Self::with_domains(arena, options, 1)
    }

    /// Creates a manager with `domains` independent epoch domains.
    ///
    /// Domain `d`'s durable counters live in the superblock's domain table
    /// (domain 0 on the legacy cells), so each domain restarts from its own
    /// boundary after a crash.
    ///
    /// # Panics
    ///
    /// Panics if `domains` is 0 or exceeds
    /// [`incll_pmem::superblock::MAX_SHARDS`].
    pub fn with_domains(arena: PArena, options: EpochOptions, domains: usize) -> Self {
        assert!(
            (1..=superblock::MAX_SHARDS).contains(&domains),
            "domain count {domains} out of range"
        );
        let states = (0..domains)
            .map(|d| {
                let (start, exec) = if options.durable_epoch {
                    (
                        arena.pread_u64(superblock::domain_cur_epoch_off(d)).max(1),
                        arena.pread_u64(superblock::domain_exec_epoch_off(d)).max(1),
                    )
                } else {
                    (1, 1)
                };
                DomainState {
                    epoch: AtomicU64::new(start),
                    exec: AtomicU64::new(exec),
                    advancing: AtomicBool::new(false),
                    advance_lock: Mutex::new(()),
                    park_lock: Mutex::new(()),
                    park_cv: Condvar::new(),
                    pre_flush_hooks: Mutex::new(Vec::new()),
                    hooks: Mutex::new(Vec::new()),
                    seq: AtomicU64::new(0),
                    bytes_logged: AtomicU64::new(0),
                    boundary_bytes: AtomicU64::new(0),
                    advances_fired: AtomicU64::new(0),
                    advances_skipped: AtomicU64::new(0),
                }
            })
            .collect();
        EpochManager {
            shared: Arc::new(Shared {
                arena,
                domains: states,
                slots: Mutex::new(Vec::new()),
                options,
            }),
        }
    }

    /// The arena this manager checkpoints.
    pub fn arena(&self) -> &PArena {
        &self.shared.arena
    }

    /// Number of epoch domains.
    pub fn domains(&self) -> usize {
        self.shared.domains.len()
    }

    /// The current epoch of domain 0 (the whole manager's epoch when
    /// single-domain).
    #[inline]
    pub fn current_epoch(&self) -> u64 {
        self.current_epoch_of(0)
    }

    /// The current epoch of domain `d`.
    #[inline]
    pub fn current_epoch_of(&self, d: usize) -> u64 {
        self.shared.domains[d].epoch.load(Ordering::Acquire)
    }

    /// The first epoch of domain 0's current execution (`currExecEpoch` in
    /// Listing 4). Nodes stamped with an older epoch need lazy recovery.
    #[inline]
    pub fn exec_epoch(&self) -> u64 {
        self.exec_epoch_of(0)
    }

    /// The first epoch of domain `d`'s current execution.
    #[inline]
    pub fn exec_epoch_of(&self, d: usize) -> u64 {
        self.shared.domains[d].exec.load(Ordering::Acquire)
    }

    /// Updates every domain's epoch state after recovery to the same
    /// `epoch` (single-domain convenience; per-shard recovery uses
    /// [`EpochManager::restart_domain_at`] with each shard's own boundary).
    pub fn restart_at(&self, epoch: u64) {
        for d in 0..self.domains() {
            self.restart_domain_at(d, epoch);
        }
    }

    /// Updates domain `d`'s epoch state after recovery: its new execution
    /// starts at `epoch`, durably recorded.
    ///
    /// `&self`-concurrent across **distinct** domains: each call writes
    /// only its own domain's counters and superblock cells (on separate
    /// cache lines), so parallel recovery restarts one domain per worker.
    pub fn restart_domain_at(&self, d: usize, epoch: u64) {
        let sh = &self.shared;
        let dom = &sh.domains[d];
        dom.epoch.store(epoch, Ordering::Release);
        dom.exec.store(epoch, Ordering::Release);
        if sh.options.durable_epoch {
            sh.arena
                .pwrite_u64(superblock::domain_cur_epoch_off(d), epoch);
            sh.arena
                .pwrite_u64(superblock::domain_exec_epoch_off(d), epoch);
            sh.arena.clwb(superblock::domain_cur_epoch_off(d));
            sh.arena.clwb(superblock::domain_exec_epoch_off(d));
            sh.arena.sfence();
        }
    }

    /// Registers the calling thread, returning its pinning handle (valid
    /// for every domain).
    pub fn register(&self) -> ThreadHandle {
        let n = self.domains();
        let row = Arc::new(SlotRow {
            states: (0..n).map(|_| AtomicU64::new(0)).collect(),
            // u64::MAX: "never wrote", distinct from any seq value.
            wrote: (0..n).map(|_| AtomicU64::new(u64::MAX)).collect(),
            dead: AtomicBool::new(false),
        });
        self.shared.slots.lock().push(row.clone());
        ThreadHandle {
            mgr: self.clone(),
            row,
            depth: (0..n).map(|_| std::cell::Cell::new(0)).collect(),
        }
    }

    /// Adds a hook run at every **domain-0** epoch boundary, after the
    /// flush and the durable epoch bump, while that domain's threads are
    /// quiesced. The argument is the *new* epoch number. (Per-domain
    /// registration: [`EpochManager::add_advance_hook_on`].)
    pub fn add_advance_hook(&self, hook: AdvanceHook) {
        self.add_advance_hook_on(0, hook);
    }

    /// Adds a boundary hook on domain `d`.
    pub fn add_advance_hook_on(&self, d: usize, hook: AdvanceHook) {
        self.shared.domains[d].hooks.lock().push(hook);
    }

    /// Adds a hook on domain `d` run at each of its advances *after*
    /// quiescence but *before* the checkpoint flush, with the finishing
    /// epoch number. Writes made here are covered by the flush that
    /// immediately follows — the slot used by failed-epoch-set compaction
    /// sweeps.
    pub fn add_pre_flush_hook_on(&self, d: usize, hook: AdvanceHook) {
        self.shared.domains[d].pre_flush_hooks.lock().push(hook);
    }

    /// Advances every domain in index order (domain 0 first), returning
    /// domain 0's new epoch — the all-domains checkpoint barrier.
    pub fn advance(&self) -> u64 {
        let first = self.advance_domain(0);
        for d in 1..self.domains() {
            self.advance_domain(d);
        }
        first
    }

    /// Advances domain `d` to its next epoch: quiesce the threads pinned
    /// in `d` → run `d`'s pre-flush hooks → flush (whole-cache when
    /// single-domain, scoped to `d` otherwise) → durably bump `d`'s epoch
    /// → run `d`'s boundary hooks → resume.
    ///
    /// Returns the domain's new epoch number. Threads pinned in *other*
    /// domains are never stalled.
    ///
    /// # Deadlocks
    ///
    /// Must not be called while the calling thread holds a [`Guard`] on
    /// `d`; the advance waits for all of `d`'s guards to drop.
    pub fn advance_domain(&self, d: usize) -> u64 {
        let sh = &self.shared;
        let dom = &sh.domains[d];
        let _adv = dom.advance_lock.lock();

        // Dekker-style handshake with `pin`: set the flag, then wait for
        // every live slot to be quiescent in this domain.
        dom.advancing.store(true, Ordering::SeqCst);
        let slots: Vec<Arc<SlotRow>> = {
            let mut guard = sh.slots.lock();
            guard.retain(|s| !s.dead.load(Ordering::Acquire));
            guard.clone()
        };
        for slot in &slots {
            let mut spins = 0u32;
            while slot.states[d].load(Ordering::SeqCst) != 0 {
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }

        // --- Domain quiesced: the checkpoint moment. Everything the
        // hooks and the epoch bump write below belongs to this domain's
        // persistence scope.
        let _scope = FlushDomainScope::enter(d as u16);
        let cur = dom.epoch.load(Ordering::Relaxed);
        for hook in dom.pre_flush_hooks.lock().iter() {
            hook(cur);
        }
        if sh.options.flush_on_advance {
            if sh.domains.len() == 1 {
                // Single domain: the paper's whole-cache flush.
                sh.arena.global_flush();
            } else {
                // Scoped: only lines dirtied under this domain (+ shared).
                sh.arena.flush_domain(d as u16);
            }
        }
        let new_epoch = cur + 1;
        if sh.options.durable_epoch {
            // The epoch only "completes" once the successor number is
            // durable; a crash before this point rolls this domain back to
            // its previous boundary (conservative but consistent).
            sh.arena
                .pwrite_u64(superblock::domain_cur_epoch_off(d), new_epoch);
            sh.arena.clwb(superblock::domain_cur_epoch_off(d));
            sh.arena.sfence();
        }
        dom.epoch.store(new_epoch, Ordering::Release);
        for hook in dom.hooks.lock().iter() {
            hook(new_epoch);
        }
        dom.advances_fired.fetch_add(1, Ordering::Relaxed);
        dom.boundary_bytes
            .store(dom.bytes_logged.load(Ordering::Relaxed), Ordering::Relaxed);
        dom.seq.fetch_add(1, Ordering::Release);

        // Resume this domain's world.
        dom.advancing.store(false, Ordering::SeqCst);
        let _pl = dom.park_lock.lock();
        dom.park_cv.notify_all();
        new_epoch
    }

    /// Whether domain `d` has seen any **write** pin
    /// ([`ThreadHandle::pin_domain_mut`]) since its last completed advance
    /// — the dirty-work heuristic the driver uses to skip advancing clean
    /// domains (a domain with no dirty lines has nothing to flush and
    /// nothing new to checkpoint; read-only traffic never forces an
    /// advance).
    pub fn domain_dirty(&self, d: usize) -> bool {
        let seq = self.shared.domains[d].seq.load(Ordering::Acquire);
        let slots = self.shared.slots.lock();
        slots
            .iter()
            .filter(|s| !s.dead.load(Ordering::Acquire))
            .any(|s| s.wrote[d].load(Ordering::Relaxed) == seq)
    }

    /// Credits `n` externally-logged bytes to domain `d` — the cheap
    /// write-rate signal (one relaxed add) the logging path feeds and an
    /// adaptive cadence controller ([`crate::AdaptiveCadence`]) consumes.
    #[inline]
    pub fn note_logged_bytes(&self, d: usize, n: u64) {
        self.shared.domains[d]
            .bytes_logged
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Records that a driver tick skipped advancing domain `d` because it
    /// was clean (pairs with the fired count bumped by
    /// [`EpochManager::advance_domain`]).
    #[inline]
    pub fn note_advance_skipped(&self, d: usize) {
        self.shared.domains[d]
            .advances_skipped
            .fetch_add(1, Ordering::Relaxed);
    }

    /// A snapshot of domain `d`'s write-rate counters.
    pub fn domain_counters(&self, d: usize) -> DomainCounters {
        let dom = &self.shared.domains[d];
        let bytes = dom.bytes_logged.load(Ordering::Relaxed);
        DomainCounters {
            bytes_logged: bytes,
            bytes_since_boundary: bytes.saturating_sub(dom.boundary_bytes.load(Ordering::Relaxed)),
            advances_fired: dom.advances_fired.load(Ordering::Relaxed),
            advances_skipped: dom.advances_skipped.load(Ordering::Relaxed),
        }
    }

    /// Number of live registered threads (for diagnostics).
    pub fn registered_threads(&self) -> usize {
        let mut guard = self.shared.slots.lock();
        guard.retain(|s| !s.dead.load(Ordering::Acquire));
        guard.len()
    }
}

impl std::fmt::Debug for EpochManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochManager")
            .field("domains", &self.domains())
            .field("epoch", &self.current_epoch())
            .field("exec_epoch", &self.exec_epoch())
            .field("options", &self.shared.options)
            .finish()
    }
}

/// A registered thread's pinning handle. Not `Sync`: one per thread.
pub struct ThreadHandle {
    mgr: EpochManager,
    row: Arc<SlotRow>,
    /// Re-entrant pin depth per domain (inner pins are free).
    depth: Vec<std::cell::Cell<u32>>,
}

impl ThreadHandle {
    /// Pins domain 0's current epoch — the whole system's epoch on a
    /// single-domain manager. See [`ThreadHandle::pin_domain`].
    #[inline]
    pub fn pin(&self) -> Guard<'_> {
        self.pin_domain(0)
    }

    /// Pins domain `d`'s current epoch, blocking briefly if that domain's
    /// advance is in progress (the per-epoch barrier, now scoped: only
    /// this domain's advances ever stall this pin). For operations that
    /// will *mutate* the domain, use [`ThreadHandle::pin_domain_mut`] so
    /// the dirty-work heuristic sees the write.
    #[inline]
    pub fn pin_domain(&self, d: usize) -> Guard<'_> {
        self.pin_inner(d, false)
    }

    /// [`ThreadHandle::pin_domain`] with the read-path contract spelled
    /// out: the cheap pin for borrowed reads and snapshot scans. It
    /// performs **no** arena or log-buffer write of any kind — the pin is
    /// one store to this thread's transient slot word plus one atomic
    /// epoch load — and it never stamps the domain dirty, so a pure-read
    /// workload (point `get`s, long scans) leaves a lazily cadenced
    /// driver ([`crate::DomainCadence::lazy`]) completely idle. Guard
    /// semantics are identical to [`ThreadHandle::pin_domain`]: while the
    /// guard lives the domain cannot advance, so epoch-based reclamation
    /// cannot recycle anything the reader can still observe.
    #[inline]
    pub fn pin_domain_read(&self, d: usize) -> Guard<'_> {
        self.pin_inner(d, false)
    }

    /// [`ThreadHandle::pin_domain`] for a mutating operation: additionally
    /// stamps the domain dirty, so a lazily cadenced driver
    /// ([`crate::DomainCadence::lazy`]) knows the next advance has work.
    #[inline]
    pub fn pin_domain_mut(&self, d: usize) -> Guard<'_> {
        self.pin_inner(d, true)
    }

    /// Pins every domain in `mask` (bit `d` = domain `d`) for writing, in
    /// ascending index order, returning the guards likewise ordered — the
    /// batch-scoped pin a cross-shard write batch holds while it stages,
    /// commits and applies. While the guards live, none of the covered
    /// domains can advance, so all of the batch's writes land in each
    /// guard's pinned epoch. Pins are not locks (two threads may pin the
    /// same domain concurrently); the ascending order just makes the
    /// acquisition deterministic.
    ///
    /// # Panics
    ///
    /// Panics if `mask` names a domain this manager does not have.
    pub fn pin_domains_mut(&self, mask: u64) -> Vec<Guard<'_>> {
        (0..64)
            .filter(|d| mask & (1u64 << d) != 0)
            .map(|d| {
                assert!(d < self.mgr.domains(), "domain {d} out of range");
                self.pin_domain_mut(d)
            })
            .collect()
    }

    #[inline]
    fn pin_inner(&self, d: usize, write: bool) -> Guard<'_> {
        let dom = &self.mgr.shared.domains[d];
        if self.depth[d].get() == 0 {
            loop {
                // Announce activity first, then re-check the flag: the
                // advancer uses the opposite order (SeqCst both sides).
                self.row.states[d].store(1, Ordering::SeqCst);
                if !dom.advancing.load(Ordering::SeqCst) {
                    break;
                }
                // Barrier hit: step back and park until the advance ends.
                self.row.states[d].store(0, Ordering::SeqCst);
                let mut pl = dom.park_lock.lock();
                if dom.advancing.load(Ordering::SeqCst) {
                    dom.park_cv.wait(&mut pl);
                }
            }
        }
        if write {
            // Even for nested pins: an inner write under an outer read
            // guard must still mark the domain dirty.
            let seq = dom.seq.load(Ordering::Acquire);
            if self.row.wrote[d].load(Ordering::Relaxed) != seq {
                self.row.wrote[d].store(seq, Ordering::Relaxed);
            }
        }
        self.depth[d].set(self.depth[d].get() + 1);
        Guard {
            handle: self,
            domain: d,
            epoch: self.mgr.current_epoch_of(d),
        }
    }

    /// The owning manager.
    pub fn manager(&self) -> &EpochManager {
        &self.mgr
    }
}

impl Drop for ThreadHandle {
    fn drop(&mut self) {
        self.row.dead.store(true, Ordering::Release);
        for s in &self.row.states {
            s.store(0, Ordering::SeqCst);
        }
    }
}

impl std::fmt::Debug for ThreadHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadHandle")
            .field("pinned", &self.depth.iter().any(|d| d.get() > 0))
            .finish()
    }
}

/// An epoch pin on one domain: while any guard is live that domain's epoch
/// cannot advance, so all reads/writes made under it belong to
/// [`Guard::epoch`] of [`Guard::domain`].
pub struct Guard<'h> {
    handle: &'h ThreadHandle,
    domain: usize,
    epoch: u64,
}

impl Guard<'_> {
    /// The epoch this guard pinned.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The domain this guard pinned.
    #[inline]
    pub fn domain(&self) -> usize {
        self.domain
    }

    /// Whether this is the thread's **outermost** live pin on its domain
    /// (no enclosing guard). Pins are re-entrant; deferred per-pin work —
    /// such as draining a staged log run before the domain may advance —
    /// belongs to the outermost guard only, since inner guards release
    /// while the domain is still held open.
    #[inline]
    pub fn is_outermost(&self) -> bool {
        self.handle.depth[self.domain].get() == 1
    }

    /// The owning manager.
    pub fn manager(&self) -> &EpochManager {
        &self.handle.mgr
    }
}

impl Drop for Guard<'_> {
    fn drop(&mut self) {
        let cell = &self.handle.depth[self.domain];
        let d = cell.get() - 1;
        cell.set(d);
        if d == 0 {
            self.handle.row.states[self.domain].store(0, Ordering::SeqCst);
        }
    }
}

impl std::fmt::Debug for Guard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Guard")
            .field("domain", &self.domain)
            .field("epoch", &self.epoch)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn durable_mgr() -> EpochManager {
        let arena = PArena::builder().capacity_bytes(1 << 20).build().unwrap();
        superblock::format(&arena);
        EpochManager::new(arena, EpochOptions::durable())
    }

    fn durable_mgr_domains(n: usize) -> EpochManager {
        let arena = PArena::builder().capacity_bytes(1 << 20).build().unwrap();
        superblock::format(&arena);
        EpochManager::with_domains(arena, EpochOptions::durable(), n)
    }

    #[test]
    fn starts_at_formatted_epoch() {
        let mgr = durable_mgr();
        assert_eq!(mgr.current_epoch(), 1);
        assert_eq!(mgr.exec_epoch(), 1);
    }

    #[test]
    fn advance_bumps_and_persists() {
        let mgr = durable_mgr();
        assert_eq!(mgr.advance(), 2);
        assert_eq!(mgr.current_epoch(), 2);
        assert_eq!(mgr.arena().pread_u64(superblock::SB_CUR_EPOCH), 2);
        assert_eq!(mgr.arena().stats().global_flush(), 1);
    }

    #[test]
    fn transient_mode_skips_flush_and_persist() {
        let arena = PArena::builder().capacity_bytes(1 << 20).build().unwrap();
        let mgr = EpochManager::new(arena, EpochOptions::transient());
        mgr.advance();
        assert_eq!(mgr.arena().stats().global_flush(), 0);
        assert_eq!(mgr.current_epoch(), 2);
    }

    #[test]
    fn guard_epoch_is_stable() {
        let mgr = durable_mgr();
        let h = mgr.register();
        let g = h.pin();
        assert_eq!(g.epoch(), 1);
        drop(g);
        mgr.advance();
        assert_eq!(h.pin().epoch(), 2);
    }

    #[test]
    fn nested_pins_share_epoch() {
        let mgr = durable_mgr();
        let h = mgr.register();
        let g1 = h.pin();
        let g2 = h.pin();
        assert_eq!(g1.epoch(), g2.epoch());
        drop(g2);
        drop(g1);
        mgr.advance();
    }

    #[test]
    fn hooks_run_with_new_epoch() {
        let mgr = durable_mgr();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = seen.clone();
        mgr.add_advance_hook(Box::new(move |e| seen2.lock().push(e)));
        mgr.advance();
        mgr.advance();
        assert_eq!(*seen.lock(), vec![2, 3]);
    }

    #[test]
    fn pre_flush_hooks_see_the_finishing_epoch() {
        let mgr = durable_mgr();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = seen.clone();
        mgr.add_pre_flush_hook_on(0, Box::new(move |e| seen2.lock().push(e)));
        mgr.advance();
        mgr.advance();
        assert_eq!(*seen.lock(), vec![1, 2]);
    }

    #[test]
    fn pre_flush_hook_writes_are_covered_by_the_checkpoint() {
        let arena = PArena::builder()
            .capacity_bytes(1 << 20)
            .tracked(true)
            .build()
            .unwrap();
        superblock::format(&arena);
        arena.global_flush();
        let off = arena.carve(64, 64).unwrap();
        let mgr = EpochManager::with_domains(arena.clone(), EpochOptions::durable(), 2);
        let a2 = arena.clone();
        mgr.add_pre_flush_hook_on(1, Box::new(move |_| a2.pwrite_u64(off, 0xC0)));
        mgr.advance_domain(1);
        arena.crash_seeded(3);
        assert_eq!(
            arena.pread_u64(off),
            0xC0,
            "pre-flush writes must be durable after the advance"
        );
    }

    #[test]
    fn advance_waits_for_guards() {
        let mgr = durable_mgr();
        let mgr2 = mgr.clone();
        let h = mgr.register();
        let g = h.pin();
        let t = std::thread::spawn(move || mgr2.advance());
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(mgr.current_epoch(), 1, "advance must wait for the guard");
        drop(g);
        t.join().unwrap();
        assert_eq!(mgr.current_epoch(), 2);
    }

    #[test]
    fn pin_blocks_during_advance_then_proceeds() {
        let mgr = durable_mgr();
        // A slow hook keeps the advance window open.
        mgr.add_advance_hook(Box::new(|_| {
            std::thread::sleep(Duration::from_millis(50));
        }));
        let mgr2 = mgr.clone();
        let t = std::thread::spawn(move || {
            mgr2.advance();
        });
        std::thread::sleep(Duration::from_millis(10));
        let h = mgr.register();
        let g = h.pin(); // must park until the advance completes
        assert_eq!(g.epoch(), 2);
        drop(g);
        t.join().unwrap();
    }

    #[test]
    fn dropped_handles_do_not_block_advance() {
        let mgr = durable_mgr();
        let h = mgr.register();
        drop(h);
        assert_eq!(mgr.registered_threads(), 0);
        mgr.advance();
        assert_eq!(mgr.current_epoch(), 2);
    }

    #[test]
    fn concurrent_workers_and_advancer() {
        let mgr = durable_mgr();
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let mgr = mgr.clone();
                let stop = stop.clone();
                s.spawn(move || {
                    let h = mgr.register();
                    let mut last = 0;
                    while !stop.load(Ordering::Relaxed) {
                        let g = h.pin();
                        // Epochs observed by a thread never go backwards.
                        assert!(g.epoch() >= last);
                        last = g.epoch();
                    }
                });
            }
            for _ in 0..50 {
                mgr.advance();
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(mgr.current_epoch(), 51);
    }

    #[test]
    fn restart_at_updates_both_epochs() {
        let mgr = durable_mgr();
        mgr.restart_at(7);
        assert_eq!(mgr.current_epoch(), 7);
        assert_eq!(mgr.exec_epoch(), 7);
        assert_eq!(mgr.arena().pread_u64(superblock::SB_EXEC_EPOCH), 7);
    }

    // ---------------- multi-domain ----------------

    #[test]
    fn domains_advance_independently() {
        let mgr = durable_mgr_domains(3);
        assert_eq!(mgr.domains(), 3);
        mgr.advance_domain(1);
        mgr.advance_domain(1);
        mgr.advance_domain(2);
        assert_eq!(mgr.current_epoch_of(0), 1);
        assert_eq!(mgr.current_epoch_of(1), 3);
        assert_eq!(mgr.current_epoch_of(2), 2);
        // Each domain's durable counter tracks its own epoch.
        let a = mgr.arena();
        assert_eq!(a.pread_u64(superblock::domain_cur_epoch_off(0)), 1);
        assert_eq!(a.pread_u64(superblock::domain_cur_epoch_off(1)), 3);
        assert_eq!(a.pread_u64(superblock::domain_cur_epoch_off(2)), 2);
    }

    #[test]
    fn concurrent_restart_of_distinct_domains_lands_each_exactly() {
        // The parallel-recovery shape: one worker restarts each domain.
        let mgr = durable_mgr_domains(8);
        std::thread::scope(|s| {
            for d in 0..8usize {
                let mgr = mgr.clone();
                s.spawn(move || mgr.restart_domain_at(d, 10 + d as u64));
            }
        });
        for d in 0..8usize {
            assert_eq!(mgr.current_epoch_of(d), 10 + d as u64);
            assert_eq!(mgr.exec_epoch_of(d), 10 + d as u64);
            let a = mgr.arena();
            assert_eq!(
                a.pread_u64(superblock::domain_cur_epoch_off(d)),
                10 + d as u64
            );
            assert_eq!(
                a.pread_u64(superblock::domain_exec_epoch_off(d)),
                10 + d as u64
            );
        }
    }

    #[test]
    fn multi_domain_reopen_reads_per_domain_epochs() {
        let arena = PArena::builder().capacity_bytes(1 << 20).build().unwrap();
        superblock::format(&arena);
        {
            let mgr = EpochManager::with_domains(arena.clone(), EpochOptions::durable(), 2);
            mgr.advance_domain(1);
            mgr.advance_domain(1);
        }
        let mgr2 = EpochManager::with_domains(arena, EpochOptions::durable(), 2);
        assert_eq!(mgr2.current_epoch_of(0), 1);
        assert_eq!(mgr2.current_epoch_of(1), 3);
    }

    #[test]
    fn multi_domain_advance_uses_scoped_flush() {
        let mgr = durable_mgr_domains(2);
        mgr.advance_domain(1);
        assert_eq!(mgr.arena().stats().global_flush(), 0);
        assert_eq!(mgr.arena().stats().scoped_flush(), 1);
        // The all-domains barrier issues one scoped flush per domain.
        mgr.advance();
        assert_eq!(mgr.arena().stats().scoped_flush(), 3);
    }

    #[test]
    fn advance_of_one_domain_does_not_stall_other_domains_pins() {
        let mgr = durable_mgr_domains(2);
        // Keep domain 1's advance window open.
        mgr.add_advance_hook_on(
            1,
            Box::new(|_| std::thread::sleep(Duration::from_millis(80))),
        );
        let mgr2 = mgr.clone();
        let t = std::thread::spawn(move || mgr2.advance_domain(1));
        std::thread::sleep(Duration::from_millis(10));
        let h = mgr.register();
        let t0 = std::time::Instant::now();
        let g = h.pin_domain(0); // must NOT park behind domain 1's advance
        assert!(
            t0.elapsed() < Duration::from_millis(40),
            "domain-0 pin stalled behind domain-1 advance"
        );
        drop(g);
        t.join().unwrap();
    }

    #[test]
    fn advance_waits_only_for_its_own_domains_guards() {
        let mgr = durable_mgr_domains(2);
        let h = mgr.register();
        let g0 = h.pin_domain(0); // held across domain 1's advance
        let mgr2 = mgr.clone();
        let t = std::thread::spawn(move || mgr2.advance_domain(1));
        t.join().unwrap(); // completes even though domain 0 is pinned
        assert_eq!(mgr.current_epoch_of(1), 2);
        drop(g0);
    }

    #[test]
    fn domain_dirty_tracks_write_pins_per_domain() {
        let mgr = durable_mgr_domains(2);
        let h = mgr.register();
        assert!(!mgr.domain_dirty(0));
        assert!(!mgr.domain_dirty(1));
        // Read pins never dirty a domain: a scanner must not force
        // checkpoints on a cold shard.
        drop(h.pin_domain(1));
        assert!(!mgr.domain_dirty(1));
        drop(h.pin_domain_mut(1));
        assert!(!mgr.domain_dirty(0));
        assert!(mgr.domain_dirty(1));
        mgr.advance_domain(1);
        assert!(!mgr.domain_dirty(1), "advance resets the dirty signal");
        drop(h.pin_domain_mut(1));
        assert!(mgr.domain_dirty(1));
    }

    #[test]
    fn domain_counters_track_bytes_and_advances_per_domain() {
        let mgr = durable_mgr_domains(2);
        assert_eq!(mgr.domain_counters(0), DomainCounters::default());
        mgr.note_logged_bytes(0, 100);
        mgr.note_logged_bytes(0, 28);
        mgr.note_logged_bytes(1, 7);
        let c0 = mgr.domain_counters(0);
        assert_eq!(c0.bytes_logged, 128);
        assert_eq!(c0.bytes_since_boundary, 128);
        assert_eq!(c0.advances_fired, 0);
        mgr.advance_domain(0);
        let c0 = mgr.domain_counters(0);
        assert_eq!(c0.bytes_logged, 128, "lifetime count survives advances");
        assert_eq!(c0.bytes_since_boundary, 0, "the boundary resets the window");
        assert_eq!(c0.advances_fired, 1);
        // Domain 1 is untouched by domain 0's advance.
        assert_eq!(mgr.domain_counters(1).bytes_since_boundary, 7);
        mgr.note_advance_skipped(1);
        assert_eq!(mgr.domain_counters(1).advances_skipped, 1);
        assert_eq!(mgr.domain_counters(0).advances_skipped, 0);
    }

    #[test]
    fn nested_write_pin_under_read_guard_marks_dirty() {
        let mgr = durable_mgr_domains(1);
        let h = mgr.register();
        let outer = h.pin_domain(0);
        let inner = h.pin_domain_mut(0);
        assert!(mgr.domain_dirty(0));
        drop(inner);
        drop(outer);
    }

    #[test]
    fn pin_domains_mut_covers_exactly_the_mask_in_order() {
        let mgr = durable_mgr_domains(4);
        let h = mgr.register();
        let guards = h.pin_domains_mut(0b1011); // domains 0, 1, 3
        assert_eq!(
            guards.iter().map(Guard::domain).collect::<Vec<_>>(),
            vec![0, 1, 3]
        );
        // Every covered domain is dirty and cannot advance; the uncovered
        // one advances freely.
        for d in [0usize, 1, 3] {
            assert!(mgr.domain_dirty(d));
        }
        assert!(!mgr.domain_dirty(2));
        let mgr2 = mgr.clone();
        let t = std::thread::spawn(move || mgr2.advance_domain(2));
        t.join().unwrap();
        assert_eq!(mgr.current_epoch_of(2), 2);

        // A covered domain's advance waits for the batch guards to drop.
        let mgr3 = mgr.clone();
        let t = std::thread::spawn(move || mgr3.advance_domain(3));
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(mgr.current_epoch_of(3), 1, "advance must wait for batch");
        drop(guards);
        t.join().unwrap();
        assert_eq!(mgr.current_epoch_of(3), 2);
    }

    #[test]
    fn batch_pins_nest_with_single_domain_pins() {
        // The apply phase re-enters per-domain pins under the batch's
        // outer guards; nesting must stay re-entrant and epoch-stable.
        let mgr = durable_mgr_domains(2);
        let h = mgr.register();
        let outer = h.pin_domains_mut(0b11);
        let inner = h.pin_domain_mut(1);
        assert_eq!(inner.epoch(), outer[1].epoch());
        drop(inner);
        drop(outer);
        mgr.advance_domain(1);
        assert_eq!(mgr.current_epoch_of(1), 2);
    }

    #[test]
    fn per_domain_guards_nest_independently() {
        let mgr = durable_mgr_domains(2);
        let h = mgr.register();
        let g0 = h.pin_domain(0);
        let g1 = h.pin_domain(1);
        assert_eq!(g0.domain(), 0);
        assert_eq!(g1.domain(), 1);
        drop(g1);
        mgr.advance_domain(1); // domain 0 still pinned; must not matter
        drop(g0);
        mgr.advance_domain(0);
        assert_eq!(mgr.current_epoch_of(0), 2);
        assert_eq!(mgr.current_epoch_of(1), 2);
    }
}
