use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use incll_pmem::{superblock, PArena};

/// A callback run at every epoch boundary with the new epoch number.
pub type AdvanceHook = Box<dyn Fn(u64) + Send + Sync>;

/// What an [`EpochManager`] does at each epoch boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochOptions {
    /// Flush the whole cache ([`PArena::global_flush`]) before bumping the
    /// epoch — the checkpoint step. On for the durable system; off for the
    /// MT+ baseline (which has the barrier but no persistence).
    pub flush_on_advance: bool,
    /// Persist the epoch counter in the superblock (`clwb` + `sfence`).
    /// On for the durable system; off for transient baselines.
    pub durable_epoch: bool,
}

impl EpochOptions {
    /// Options for the durable (INCLL) system: flush + durable counter.
    pub fn durable() -> Self {
        EpochOptions {
            flush_on_advance: true,
            durable_epoch: true,
        }
    }

    /// Options for the transient MT+ baseline: barrier only.
    pub fn transient() -> Self {
        EpochOptions {
            flush_on_advance: false,
            durable_epoch: false,
        }
    }
}

/// Per-registered-thread state.
///
/// `state` is 0 when the thread is quiescent (no live guard) and 1 when it
/// is inside a guard; `dead` marks deregistered threads the advancer must
/// skip.
struct Slot {
    state: AtomicU64,
    dead: AtomicBool,
}

struct Shared {
    arena: PArena,
    /// Source of truth for the running system; mirrors the durable counter.
    global_epoch: AtomicU64,
    /// First epoch of this execution (recovery sets it past failed epochs).
    exec_epoch: AtomicU64,
    /// Set while an advance is quiescing/working; gates `pin`.
    advancing: AtomicBool,
    /// Serialises advancers.
    advance_lock: Mutex<()>,
    /// Parking for threads that hit the barrier mid-advance.
    park_lock: Mutex<()>,
    park_cv: Condvar,
    slots: Mutex<Vec<Arc<Slot>>>,
    hooks: Mutex<Vec<AdvanceHook>>,
    options: EpochOptions,
}

/// The global epoch authority (see crate docs).
///
/// Cloneable handle; all clones share state.
#[derive(Clone)]
pub struct EpochManager {
    shared: Arc<Shared>,
}

impl EpochManager {
    /// Creates a manager over `arena`.
    ///
    /// With [`EpochOptions::durable`] the starting epoch is read from the
    /// superblock (which must be formatted); otherwise it starts at 1.
    pub fn new(arena: PArena, options: EpochOptions) -> Self {
        let start = if options.durable_epoch {
            arena.pread_u64(superblock::SB_CUR_EPOCH).max(1)
        } else {
            1
        };
        let exec = if options.durable_epoch {
            arena.pread_u64(superblock::SB_EXEC_EPOCH).max(1)
        } else {
            1
        };
        EpochManager {
            shared: Arc::new(Shared {
                arena,
                global_epoch: AtomicU64::new(start),
                exec_epoch: AtomicU64::new(exec),
                advancing: AtomicBool::new(false),
                advance_lock: Mutex::new(()),
                park_lock: Mutex::new(()),
                park_cv: Condvar::new(),
                slots: Mutex::new(Vec::new()),
                hooks: Mutex::new(Vec::new()),
                options,
            }),
        }
    }

    /// The arena this manager checkpoints.
    pub fn arena(&self) -> &PArena {
        &self.shared.arena
    }

    /// The current epoch number.
    #[inline]
    pub fn current_epoch(&self) -> u64 {
        self.shared.global_epoch.load(Ordering::Acquire)
    }

    /// The first epoch of the current execution (`currExecEpoch` in
    /// Listing 4). Nodes stamped with an older epoch need lazy recovery.
    #[inline]
    pub fn exec_epoch(&self) -> u64 {
        self.shared.exec_epoch.load(Ordering::Acquire)
    }

    /// Updates epoch state after recovery: the new execution starts at
    /// `epoch`, durably recorded.
    pub fn restart_at(&self, epoch: u64) {
        let sh = &self.shared;
        sh.global_epoch.store(epoch, Ordering::Release);
        sh.exec_epoch.store(epoch, Ordering::Release);
        if sh.options.durable_epoch {
            sh.arena.pwrite_u64(superblock::SB_CUR_EPOCH, epoch);
            sh.arena.pwrite_u64(superblock::SB_EXEC_EPOCH, epoch);
            sh.arena.clwb(superblock::SB_CUR_EPOCH);
            sh.arena.sfence();
        }
    }

    /// Registers the calling thread, returning its pinning handle.
    pub fn register(&self) -> ThreadHandle {
        let slot = Arc::new(Slot {
            state: AtomicU64::new(0),
            dead: AtomicBool::new(false),
        });
        self.shared.slots.lock().push(slot.clone());
        ThreadHandle {
            mgr: self.clone(),
            slot,
            depth: std::cell::Cell::new(0),
        }
    }

    /// Adds a hook run at every epoch boundary, after the flush and the
    /// durable epoch bump, while all threads are quiesced. The argument is
    /// the *new* epoch number.
    pub fn add_advance_hook(&self, hook: AdvanceHook) {
        self.shared.hooks.lock().push(hook);
    }

    /// Advances to the next epoch: quiesce all threads → flush the cache
    /// (checkpoint) → durably bump the epoch → run boundary hooks → resume.
    ///
    /// Returns the new epoch number.
    ///
    /// # Deadlocks
    ///
    /// Must not be called while the calling thread holds a [`Guard`]; the
    /// advance waits for all guards to drop.
    pub fn advance(&self) -> u64 {
        let sh = &self.shared;
        let _adv = sh.advance_lock.lock();

        // Dekker-style handshake with `pin`: set the flag, then wait for
        // every live slot to be quiescent.
        sh.advancing.store(true, Ordering::SeqCst);
        let slots: Vec<Arc<Slot>> = {
            let mut guard = sh.slots.lock();
            guard.retain(|s| !s.dead.load(Ordering::Acquire));
            guard.clone()
        };
        for slot in &slots {
            let mut spins = 0u32;
            while slot.state.load(Ordering::SeqCst) != 0 {
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }

        // --- All threads quiesced: the checkpoint moment. ---
        if sh.options.flush_on_advance {
            // Everything written during the finishing epoch becomes durable.
            sh.arena.global_flush();
        }
        let new_epoch = sh.global_epoch.load(Ordering::Relaxed) + 1;
        if sh.options.durable_epoch {
            // The epoch only "completes" once the successor number is
            // durable; a crash before this point rolls back to the previous
            // boundary (conservative but consistent).
            sh.arena.pwrite_u64(superblock::SB_CUR_EPOCH, new_epoch);
            sh.arena.clwb(superblock::SB_CUR_EPOCH);
            sh.arena.sfence();
        }
        sh.global_epoch.store(new_epoch, Ordering::Release);
        for hook in sh.hooks.lock().iter() {
            hook(new_epoch);
        }

        // Resume the world.
        sh.advancing.store(false, Ordering::SeqCst);
        let _pl = sh.park_lock.lock();
        sh.park_cv.notify_all();
        new_epoch
    }

    /// Number of live registered threads (for diagnostics).
    pub fn registered_threads(&self) -> usize {
        let mut guard = self.shared.slots.lock();
        guard.retain(|s| !s.dead.load(Ordering::Acquire));
        guard.len()
    }
}

impl std::fmt::Debug for EpochManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochManager")
            .field("epoch", &self.current_epoch())
            .field("exec_epoch", &self.exec_epoch())
            .field("options", &self.shared.options)
            .finish()
    }
}

/// A registered thread's pinning handle. Not `Sync`: one per thread.
pub struct ThreadHandle {
    mgr: EpochManager,
    slot: Arc<Slot>,
    /// Re-entrant pin depth (inner pins are free).
    depth: std::cell::Cell<u32>,
}

impl ThreadHandle {
    /// Pins the current epoch, blocking briefly if an advance is in
    /// progress (the paper's per-epoch global barrier).
    #[inline]
    pub fn pin(&self) -> Guard<'_> {
        if self.depth.get() == 0 {
            loop {
                // Announce activity first, then re-check the flag: the
                // advancer uses the opposite order (SeqCst both sides).
                self.slot.state.store(1, Ordering::SeqCst);
                if !self.mgr.shared.advancing.load(Ordering::SeqCst) {
                    break;
                }
                // Barrier hit: step back and park until the advance ends.
                self.slot.state.store(0, Ordering::SeqCst);
                let mut pl = self.mgr.shared.park_lock.lock();
                if self.mgr.shared.advancing.load(Ordering::SeqCst) {
                    self.mgr.shared.park_cv.wait(&mut pl);
                }
            }
        }
        self.depth.set(self.depth.get() + 1);
        Guard {
            handle: self,
            epoch: self.mgr.current_epoch(),
        }
    }

    /// The owning manager.
    pub fn manager(&self) -> &EpochManager {
        &self.mgr
    }
}

impl Drop for ThreadHandle {
    fn drop(&mut self) {
        self.slot.dead.store(true, Ordering::Release);
        self.slot.state.store(0, Ordering::SeqCst);
    }
}

impl std::fmt::Debug for ThreadHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadHandle")
            .field("pinned", &(self.depth.get() > 0))
            .finish()
    }
}

/// An epoch pin: while any guard is live the epoch cannot advance, so all
/// reads/writes made under it belong to [`Guard::epoch`].
pub struct Guard<'h> {
    handle: &'h ThreadHandle,
    epoch: u64,
}

impl Guard<'_> {
    /// The epoch this guard pinned.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The owning manager.
    pub fn manager(&self) -> &EpochManager {
        &self.handle.mgr
    }
}

impl Drop for Guard<'_> {
    fn drop(&mut self) {
        let d = self.handle.depth.get() - 1;
        self.handle.depth.set(d);
        if d == 0 {
            self.handle.slot.state.store(0, Ordering::SeqCst);
        }
    }
}

impl std::fmt::Debug for Guard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Guard").field("epoch", &self.epoch).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn durable_mgr() -> EpochManager {
        let arena = PArena::builder().capacity_bytes(1 << 20).build().unwrap();
        superblock::format(&arena);
        EpochManager::new(arena, EpochOptions::durable())
    }

    #[test]
    fn starts_at_formatted_epoch() {
        let mgr = durable_mgr();
        assert_eq!(mgr.current_epoch(), 1);
        assert_eq!(mgr.exec_epoch(), 1);
    }

    #[test]
    fn advance_bumps_and_persists() {
        let mgr = durable_mgr();
        assert_eq!(mgr.advance(), 2);
        assert_eq!(mgr.current_epoch(), 2);
        assert_eq!(mgr.arena().pread_u64(superblock::SB_CUR_EPOCH), 2);
        assert_eq!(mgr.arena().stats().global_flush(), 1);
    }

    #[test]
    fn transient_mode_skips_flush_and_persist() {
        let arena = PArena::builder().capacity_bytes(1 << 20).build().unwrap();
        let mgr = EpochManager::new(arena, EpochOptions::transient());
        mgr.advance();
        assert_eq!(mgr.arena().stats().global_flush(), 0);
        assert_eq!(mgr.current_epoch(), 2);
    }

    #[test]
    fn guard_epoch_is_stable() {
        let mgr = durable_mgr();
        let h = mgr.register();
        let g = h.pin();
        assert_eq!(g.epoch(), 1);
        drop(g);
        mgr.advance();
        assert_eq!(h.pin().epoch(), 2);
    }

    #[test]
    fn nested_pins_share_epoch() {
        let mgr = durable_mgr();
        let h = mgr.register();
        let g1 = h.pin();
        let g2 = h.pin();
        assert_eq!(g1.epoch(), g2.epoch());
        drop(g2);
        drop(g1);
        mgr.advance();
    }

    #[test]
    fn hooks_run_with_new_epoch() {
        let mgr = durable_mgr();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = seen.clone();
        mgr.add_advance_hook(Box::new(move |e| seen2.lock().push(e)));
        mgr.advance();
        mgr.advance();
        assert_eq!(*seen.lock(), vec![2, 3]);
    }

    #[test]
    fn advance_waits_for_guards() {
        let mgr = durable_mgr();
        let mgr2 = mgr.clone();
        let h = mgr.register();
        let g = h.pin();
        let t = std::thread::spawn(move || mgr2.advance());
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(mgr.current_epoch(), 1, "advance must wait for the guard");
        drop(g);
        t.join().unwrap();
        assert_eq!(mgr.current_epoch(), 2);
    }

    #[test]
    fn pin_blocks_during_advance_then_proceeds() {
        let mgr = durable_mgr();
        // A slow hook keeps the advance window open.
        mgr.add_advance_hook(Box::new(|_| {
            std::thread::sleep(Duration::from_millis(50));
        }));
        let mgr2 = mgr.clone();
        let t = std::thread::spawn(move || {
            mgr2.advance();
        });
        std::thread::sleep(Duration::from_millis(10));
        let h = mgr.register();
        let g = h.pin(); // must park until the advance completes
        assert_eq!(g.epoch(), 2);
        drop(g);
        t.join().unwrap();
    }

    #[test]
    fn dropped_handles_do_not_block_advance() {
        let mgr = durable_mgr();
        let h = mgr.register();
        drop(h);
        assert_eq!(mgr.registered_threads(), 0);
        mgr.advance();
        assert_eq!(mgr.current_epoch(), 2);
    }

    #[test]
    fn concurrent_workers_and_advancer() {
        let mgr = durable_mgr();
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let mgr = mgr.clone();
                let stop = stop.clone();
                s.spawn(move || {
                    let h = mgr.register();
                    let mut last = 0;
                    while !stop.load(Ordering::Relaxed) {
                        let g = h.pin();
                        // Epochs observed by a thread never go backwards.
                        assert!(g.epoch() >= last);
                        last = g.epoch();
                    }
                });
            }
            for _ in 0..50 {
                mgr.advance();
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(mgr.current_epoch(), 51);
    }

    #[test]
    fn restart_at_updates_both_epochs() {
        let mgr = durable_mgr();
        mgr.restart_at(7);
        assert_eq!(mgr.current_epoch(), 7);
        assert_eq!(mgr.exec_epoch(), 7);
        assert_eq!(mgr.arena().pread_u64(superblock::SB_EXEC_EPOCH), 7);
    }
}
