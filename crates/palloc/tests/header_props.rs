//! Property tests for the §5.1 object-header packing (moved here from the
//! workspace-level suite so the public integration tests stay on the
//! `Store` facade).

use incll_palloc::header;
use proptest::prelude::*;

proptest! {
    /// Allocator header packing is lossless and the torn-write counter
    /// detection triggers exactly on counter mismatch.
    #[test]
    fn palloc_header_roundtrip(ptr in 0u64..(1 << 44), c in 0u8..4, ep in any::<u16>()) {
        let ptr = ptr << 4;
        let w = header::pack(ptr, c, ep);
        prop_assert_eq!(header::ptr(w), ptr);
        prop_assert_eq!(header::counter(w), c);
        prop_assert_eq!(header::epoch16(w), ep);
    }

    #[test]
    fn palloc_header_torn_detection(p0 in 0u64..(1 << 40), p1 in 0u64..(1 << 40), c0 in 0u8..4, c1 in 0u8..4) {
        let w0 = header::pack(p0 << 4, c0, 1);
        let w1 = header::pack(p1 << 4, c1, 2);
        let d = header::decode(w0, w1, |_| false);
        if c0 != c1 {
            prop_assert!(d.torn);
            prop_assert_eq!(d.next, p1 << 4); // word1 is authoritative
        } else {
            prop_assert!(!d.torn);
            prop_assert_eq!(d.next, p0 << 4);
        }
    }
}
