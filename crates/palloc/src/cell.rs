//! InCLL-protected head cells: one cache line per (thread, class).
//!
//! Each cell packs the durable state of one free list *and* its pending
//! (freed-this-epoch) list into a single cache line, so first-modification
//! logging needs only same-line stores ordered by a release fence — the
//! core InCLL trick applied to the allocator (§5):
//!
//! ```text
//! +0  freeHead     +8  freeHeadInCLL   +16 freeEpoch
//! +24 pendHead     +32 pendHeadInCLL   +40 pendEpoch
//! +48 pendTail     +56 pendTailInCLL
//! ```
//!
//! `freeEpoch`/`pendEpoch` are full 64-bit epochs (no packing needed: the
//! cell has room). `pendTail` is logged under `pendEpoch` together with
//! `pendHead`.

use incll_pmem::PArena;

/// Byte size of one head cell (a full cache line).
pub const CELL_BYTES: u64 = 64;

pub(crate) const FREE_HEAD: u64 = 0;
pub(crate) const FREE_INCLL: u64 = 8;
pub(crate) const FREE_EPOCH: u64 = 16;
pub(crate) const PEND_HEAD: u64 = 24;
pub(crate) const PEND_INCLL: u64 = 32;
pub(crate) const PEND_EPOCH: u64 = 40;
pub(crate) const PEND_TAIL: u64 = 48;
pub(crate) const PEND_TAIL_INCLL: u64 = 56;

/// Reads the free-list head.
#[inline]
pub(crate) fn free_head(arena: &PArena, cell: u64) -> u64 {
    arena.pread_u64(cell + FREE_HEAD)
}

/// Reads the pending-list head.
#[inline]
pub(crate) fn pend_head(arena: &PArena, cell: u64) -> u64 {
    arena.pread_u64(cell + PEND_HEAD)
}

/// Reads the pending-list tail.
#[inline]
pub(crate) fn pend_tail(arena: &PArena, cell: u64) -> u64 {
    arena.pread_u64(cell + PEND_TAIL)
}

/// Sets the free-list head, taking the in-line undo log on the first
/// modification in `epoch`.
///
/// Store order (all same cache line, release-ordered): log value →
/// epoch tag → mutation. Any persisted prefix recovers correctly:
/// nothing / log-only (epoch stale → no recovery, head unchanged) /
/// log+epoch (recovery re-installs the identical old value) / all
/// (recovery restores the logged epoch-start value).
#[inline]
pub(crate) fn set_free_head(arena: &PArena, cell: u64, epoch: u64, new_head: u64) {
    if arena.pread_u64(cell + FREE_EPOCH) != epoch {
        let old = arena.pread_u64(cell + FREE_HEAD);
        arena.pwrite_u64(cell + FREE_INCLL, old);
        arena.pwrite_u64_release(cell + FREE_EPOCH, epoch);
        arena.stats().add_incll_alloc();
    }
    arena.pwrite_u64_release(cell + FREE_HEAD, new_head);
}

/// Takes the pending-list undo log (head *and* tail) if this is the first
/// pending-side modification in `epoch`. Callers then mutate
/// `pendHead`/`pendTail` freely with [`set_pend_head`]/[`set_pend_tail`]
/// for the rest of the epoch.
#[inline]
pub(crate) fn log_pending(arena: &PArena, cell: u64, epoch: u64) {
    if arena.pread_u64(cell + PEND_EPOCH) != epoch {
        let head = arena.pread_u64(cell + PEND_HEAD);
        let tail = arena.pread_u64(cell + PEND_TAIL);
        arena.pwrite_u64(cell + PEND_INCLL, head);
        arena.pwrite_u64(cell + PEND_TAIL_INCLL, tail);
        arena.pwrite_u64_release(cell + PEND_EPOCH, epoch);
        arena.stats().add_incll_alloc();
    }
}

/// Sets the pending head (after [`log_pending`] in this epoch).
#[inline]
pub(crate) fn set_pend_head(arena: &PArena, cell: u64, new_head: u64) {
    arena.pwrite_u64_release(cell + PEND_HEAD, new_head);
}

/// Sets the pending tail (after [`log_pending`] in this epoch).
#[inline]
pub(crate) fn set_pend_tail(arena: &PArena, cell: u64, new_tail: u64) {
    arena.pwrite_u64_release(cell + PEND_TAIL, new_tail);
}

/// Repairs a cell after a crash: any side whose epoch tag names a failed
/// epoch reverts to its logged value, and the tag is moved to
/// `exec_epoch` so the repair is not repeated.
///
/// Recovery order (value first, tag second) keeps a re-crash idempotent:
/// if only the value write persists the tag still names a failed epoch and
/// the next recovery re-installs the same value; if only the tag persists,
/// the tag now names the *new* failed epoch (the recovery execution's) and
/// the unchanged log value is re-applied.
pub(crate) fn recover_cell(
    arena: &PArena,
    cell: u64,
    is_failed: impl Fn(u64) -> bool,
    exec_epoch: u64,
) -> bool {
    let mut repaired = false;
    let fe = arena.pread_u64(cell + FREE_EPOCH);
    if fe != 0 && is_failed(fe) {
        let logged = arena.pread_u64(cell + FREE_INCLL);
        arena.pwrite_u64(cell + FREE_HEAD, logged);
        arena.pwrite_u64_release(cell + FREE_EPOCH, exec_epoch);
        repaired = true;
    }
    let pe = arena.pread_u64(cell + PEND_EPOCH);
    if pe != 0 && is_failed(pe) {
        let head = arena.pread_u64(cell + PEND_INCLL);
        let tail = arena.pread_u64(cell + PEND_TAIL_INCLL);
        arena.pwrite_u64(cell + PEND_HEAD, head);
        arena.pwrite_u64(cell + PEND_TAIL, tail);
        arena.pwrite_u64_release(cell + PEND_EPOCH, exec_epoch);
        repaired = true;
    }
    repaired
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arena_with_cell() -> (PArena, u64) {
        let arena = PArena::builder().capacity_bytes(1 << 20).build().unwrap();
        let cell = arena.carve(64, 64).unwrap();
        (arena, cell)
    }

    #[test]
    fn first_set_logs_old_value() {
        let (a, cell) = arena_with_cell();
        a.pwrite_u64(cell + FREE_HEAD, 0x100);
        set_free_head(&a, cell, 5, 0x200);
        assert_eq!(free_head(&a, cell), 0x200);
        assert_eq!(a.pread_u64(cell + FREE_INCLL), 0x100);
        assert_eq!(a.pread_u64(cell + FREE_EPOCH), 5);
    }

    #[test]
    fn same_epoch_second_set_does_not_relog() {
        let (a, cell) = arena_with_cell();
        a.pwrite_u64(cell + FREE_HEAD, 0x100);
        set_free_head(&a, cell, 5, 0x200);
        set_free_head(&a, cell, 5, 0x300);
        // Log still holds the epoch-start value.
        assert_eq!(a.pread_u64(cell + FREE_INCLL), 0x100);
        assert_eq!(free_head(&a, cell), 0x300);
        assert_eq!(a.stats().incll_alloc_logs(), 1);
    }

    #[test]
    fn new_epoch_relogs() {
        let (a, cell) = arena_with_cell();
        set_free_head(&a, cell, 5, 0x200);
        set_free_head(&a, cell, 6, 0x300);
        assert_eq!(a.pread_u64(cell + FREE_INCLL), 0x200);
        assert_eq!(a.pread_u64(cell + FREE_EPOCH), 6);
    }

    #[test]
    fn recover_reverts_failed_epoch_only() {
        let (a, cell) = arena_with_cell();
        a.pwrite_u64(cell + FREE_HEAD, 0x100);
        set_free_head(&a, cell, 5, 0x200);
        // Epoch 5 completed: no revert.
        assert!(!recover_cell(&a, cell, |e| e == 4, 7));
        assert_eq!(free_head(&a, cell), 0x200);
        // Epoch 5 failed: revert.
        assert!(recover_cell(&a, cell, |e| e == 5, 7));
        assert_eq!(free_head(&a, cell), 0x100);
        assert_eq!(a.pread_u64(cell + FREE_EPOCH), 7);
    }

    #[test]
    fn recover_pending_restores_head_and_tail() {
        let (a, cell) = arena_with_cell();
        a.pwrite_u64(cell + PEND_HEAD, 0x10);
        a.pwrite_u64(cell + PEND_TAIL, 0x20);
        log_pending(&a, cell, 9);
        set_pend_head(&a, cell, 0x30);
        set_pend_tail(&a, cell, 0x40);
        assert!(recover_cell(&a, cell, |e| e == 9, 10));
        assert_eq!(pend_head(&a, cell), 0x10);
        assert_eq!(pend_tail(&a, cell), 0x20);
    }

    #[test]
    fn recovery_is_idempotent() {
        let (a, cell) = arena_with_cell();
        a.pwrite_u64(cell + FREE_HEAD, 0x100);
        set_free_head(&a, cell, 5, 0x200);
        recover_cell(&a, cell, |e| e == 5, 7);
        // Second recovery with epoch 7 also failed (re-crash during
        // recovery): the log value is unchanged, so re-applying it is a
        // no-op state-wise.
        recover_cell(&a, cell, |e| e == 5 || e == 7, 8);
        assert_eq!(free_head(&a, cell), 0x100);
    }

    #[test]
    fn cell_crash_consistency_under_tracked_arena() {
        // Exhaustively enumerate persisted prefixes of the cell line for a
        // single first-modification; every cut must recover to either the
        // old or the (logged) old value — never garbage.
        for cut in 0..=4usize {
            let a = PArena::builder()
                .capacity_bytes(1 << 20)
                .tracked(true)
                .build()
                .unwrap();
            let cell = a.carve(64, 64).unwrap();
            a.pwrite_u64(cell + FREE_HEAD, 0x100);
            a.global_flush();
            set_free_head(&a, cell, 5, 0x200); // 3 stores to the line
            a.crash_with(|_, n| cut.min(n));
            recover_cell(&a, cell, |e| e == 5, 6);
            let head = free_head(&a, cell);
            assert_eq!(head, 0x100, "cut={cut}: epoch-start value required");
        }
    }
}
