//! Durable memory allocator with in-cache-line-logged free lists (§5).
//!
//! The paper's observation: an allocator is just a durable data structure —
//! a set of free chunks — so the same fine-grain-checkpointing + InCLL
//! recipe applies. This allocator provides:
//!
//! * **Per-(thread, class) free lists** — the pool-allocation style of the
//!   MT+ baseline, lock-free because each thread owns its lists.
//! * **16-byte object headers** ([`header`]) packing `next`, the epoch-start
//!   `next` (the undo log) and a 32-bit epoch into two words via pointer
//!   canonical-form bits plus 2-bit torn-write counters (§5.1).
//! * **InCLL-protected list heads** — one cache line per list pair, logged
//!   in place with release-ordered same-line stores.
//! * **Epoch-based reclamation**: `free` pushes onto a *pending* list;
//!   pending objects are spliced into the allocatable list at the next
//!   epoch boundary, guaranteeing an object is only handed out if it was
//!   free at the start of the epoch. That property is what makes logging
//!   buffer *contents* unnecessary (§5): after a crash the buffer reverts
//!   to free, and nobody can hold a reference to it.
//!
//! No `clwb`/`sfence` ever executes on the allocation or free path.
//!
//! # Epoch domains
//!
//! Under per-shard epoch domains every epoch-tagged undo in this allocator
//! must be keyed to exactly **one** domain's timeline, or a head cell
//! touched by two shards could not be rolled back per shard. The free
//! lists therefore become per-**(thread, domain)**-per-class
//! ([`PAlloc::create_sharded`], [`PAlloc::alloc_in`]): every object is
//! owned for life by the shard whose tree references it (keys never
//! migrate between shards), so its header epochs, its head cells and its
//! pending-list residency all live on that shard's timeline — allocated
//! under the shard's epoch, spliced at the shard's boundary, repaired
//! against the shard's failed set.
//!
//! The bump **watermark** is per shard too, and since superblock layout
//! v6 the carvable space behind it is a **chunked extent pool**: a
//! multi-domain allocator turns the arena's remaining space into a pool
//! of fixed-size power-of-two extents ([`PAlloc::create_sharded`] must
//! therefore be the last create-time carver) and each shard carves from
//! a chain of extents it *claims online* from the shared durable
//! extent-owner table ([`incll_pmem::superblock::SB_EXTENT_OWNERS`]) —
//! one byte per extent on dedicated cache lines, claimed lowest-index
//! first with a CAS-then-`clwb`/`sfence` so a crash mid-claim shows
//! either an owned extent or a free one, never a torn owner. Each shard
//! keeps its own carve frontier with its own durable InCLL watermark
//! triple on a dedicated cache line
//! ([`incll_pmem::superblock::shard_bump_off`]). Slab carves never cross
//! shards, the frontier's epoch tag lives on the owning shard's own
//! timeline, and the paper's flush-free watermark protocol applies per
//! shard: a crash rolls each shard's frontier back to its epoch-start
//! value, so slabs carved in a doomed epoch **un-carve** within the
//! owning extent — nothing leaks, and no `clwb`/`sfence` ever runs on
//! the common carve path (only the rare extent *claim* — once per
//! extent, ever — issues one write-back + fence, so the durable claim
//! always precedes any durable frontier referencing the extent).
//!
//! Extents are never released: a claim made in an epoch that later
//! failed (the frontier reverted out of the extent) merely leaves the
//! extent on the owning shard's **reserve** chain, reused before any new
//! claim — so recovery rebuilds each shard's chain from the owner table
//! with zero media writes, byte-identical at every recovery worker
//! count. [`Error::Pmem`]`(OutOfMemory)` from the carve path now means
//! the **pool** is exhausted (every extent claimed and the shard's chain
//! full), not that a fixed create-time region filled while siblings sat
//! on free space. Single-domain allocators keep the paper's single
//! shared frontier and media shape exactly (one implicit extent chain:
//! the whole arena).
//!
//! # Example
//!
//! ```
//! use incll_pmem::{superblock, PArena};
//! use incll_palloc::PAlloc;
//!
//! # fn main() -> Result<(), incll_palloc::Error> {
//! let arena = PArena::builder().capacity_bytes(1 << 20).build()?;
//! superblock::format(&arena);
//! let alloc = PAlloc::create(&arena, /*threads*/ 2)?;
//! let buf = alloc.alloc(/*thread*/ 0, /*epoch*/ 1, 32)?;
//! arena.pwrite_u64(buf, 42); // fill the buffer: no flush needed
//! alloc.free(0, 1, buf, 32);
//! # Ok(())
//! # }
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use incll_epoch::EpochManager;
use incll_pmem::{superblock, PArena};

mod cell;
mod classes;
pub mod header;

pub use classes::{
    class_for, class_for_aligned64, object_bytes, ALIGNED64_CLASS_SIZES, CLASS_SIZES, NUM_CLASSES,
    SLAB_OBJECTS, TOTAL_CLASSES,
};
pub use header::HEADER_BYTES;

/// Errors returned by the durable allocator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// Underlying arena failure (typically out of memory).
    Pmem(incll_pmem::Error),
    /// Requested size exceeds the largest size class.
    UnsupportedSize {
        /// The offending request, in bytes.
        size: usize,
    },
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Pmem(e) => write!(f, "persistent memory error: {e}"),
            Error::UnsupportedSize { size } => write!(
                f,
                "allocation of {size} bytes exceeds the largest size class ({})",
                CLASS_SIZES[NUM_CLASSES - 1]
            ),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Pmem(e) => Some(e),
            _ => None,
        }
    }
}

impl From<incll_pmem::Error> for Error {
    fn from(e: incll_pmem::Error) -> Self {
        Error::Pmem(e)
    }
}

/// Default pool extent size: 1 MiB.
pub const DEFAULT_EXTENT_BYTES: u64 = 1 << 20;
/// Smallest pool extent size create will shrink to for tiny arenas. Must
/// hold at least one object of the largest class plus alignment slack.
pub const MIN_EXTENT_BYTES: u64 = 64 * 1024;

/// The extent pool a multi-domain allocator carves from (v6 media).
#[derive(Debug, Clone, Copy)]
struct Pool {
    /// Base offset of extent 0 (64-aligned).
    base: u64,
    /// Bytes per extent (power of two, multiple of 64).
    extent_bytes: u64,
    /// Number of extents in the pool.
    count: usize,
}

impl Pool {
    #[inline]
    fn start(&self, idx: usize) -> u64 {
        self.base + idx as u64 * self.extent_bytes
    }

    #[inline]
    fn end(&self, idx: usize) -> u64 {
        self.start(idx) + self.extent_bytes
    }
}

struct Inner {
    arena: PArena,
    /// Base of the head-cell region:
    /// `nthreads × ndomains × TOTAL_CLASSES` cache lines.
    root: u64,
    nthreads: usize,
    /// Epoch domains (1 = the legacy single-timeline allocator).
    ndomains: usize,
    /// Low 32 bits of every durable failed epoch, per domain (object
    /// headers store 32-bit epochs).
    failed_low32: Vec<Vec<u32>>,
    /// Full failed epochs, per domain (head cells store full epochs).
    failed_full: Vec<Vec<u64>>,
    /// The shared extent pool. Multi-domain only (the v6 layout); `None`
    /// for a single-domain allocator, which carves from the arena's
    /// shared frontier.
    pool: Option<Pool>,
    /// Per-domain transient carve frontier, mirroring the domain's durable
    /// watermark. Multi-domain only.
    frontier: Vec<AtomicU64>,
    /// Per-domain end of the *active* extent (the one the frontier is
    /// inside); the frontier may carve up to it. Multi-domain only.
    limit: Vec<AtomicU64>,
    /// Per-domain reserve chain: owned-but-not-yet-active extent indices
    /// in ascending order (claims are strictly lowest-index-first and
    /// extents are never released, so ascending order is canonical).
    /// Activated front-first before any new claim. Multi-domain only.
    reserve: Vec<Mutex<Vec<u32>>>,
    /// Serialises each domain's durable-watermark updates (slab carving is
    /// rare); one lock per domain so carves never contend across shards.
    carve_locks: Vec<Mutex<()>>,
}

/// The durable allocator (see crate docs). Cheap to clone.
#[derive(Clone)]
pub struct PAlloc {
    inner: Arc<Inner>,
}

impl PAlloc {
    /// Creates a fresh allocator over a formatted arena, carving the
    /// head-cell region and initialising the durable watermark.
    ///
    /// # Errors
    ///
    /// Propagates arena carve failures.
    ///
    /// # Panics
    ///
    /// Panics if `nthreads` is zero.
    pub fn create(arena: &PArena, nthreads: usize) -> Result<Self, Error> {
        Self::create_sharded(arena, nthreads, 1)
    }

    /// Creates a fresh allocator whose free lists are segregated per
    /// **(thread, domain)**: allocations under domain `d`
    /// ([`PAlloc::alloc_in`]) come from, and return to, lists whose undo
    /// tags live entirely on `d`'s epoch timeline. See the crate docs'
    /// epoch-domains section.
    ///
    /// With more than one domain the allocator also turns the rest of the
    /// arena into the **extent pool**: all remaining carvable space
    /// becomes up to [`incll_pmem::superblock::MAX_EXTENTS`] fixed-size
    /// power-of-two extents (default [`DEFAULT_EXTENT_BYTES`], shrunk for
    /// tiny arenas, grown for huge ones), each shard eagerly claims one,
    /// and further extents are claimed online from the shared durable
    /// owner table as shards exhaust their chains. The pool claims the
    /// rest of the arena, so this must be the *last* create-time carver —
    /// carve shared regions (e.g. the external log) first.
    ///
    /// # Errors
    ///
    /// Propagates arena carve failures (including an arena too small to
    /// give every domain at least one extent).
    ///
    /// # Panics
    ///
    /// Panics if `nthreads` or `ndomains` is zero.
    pub fn create_sharded(arena: &PArena, nthreads: usize, ndomains: usize) -> Result<Self, Error> {
        assert!(nthreads > 0, "allocator needs at least one thread slot");
        assert!(ndomains > 0, "allocator needs at least one epoch domain");
        let region = (nthreads * ndomains * TOTAL_CLASSES) as u64 * cell::CELL_BYTES;
        let root = arena.carve(region as usize, 64)?;
        // Head cells start zeroed (alloc_zeroed arena).
        arena.pwrite_u64(superblock::SB_PALLOC_HEADS, root);
        arena.pwrite_u64(superblock::SB_PALLOC_HEADS + 8, nthreads as u64);
        arena.pwrite_u64(superblock::SB_PALLOC_HEADS + 16, TOTAL_CLASSES as u64);
        arena.pwrite_u64(superblock::SB_PALLOC_HEADS + 24, ndomains as u64);

        let (pool, frontier, limit, reserve) = if ndomains == 1 {
            // Single domain: the paper's shared frontier on the legacy
            // cells — one implicit extent chain spanning the whole arena.
            arena.pwrite_u64(superblock::SB_ARENA_SPLIT, 0);
            arena.pwrite_u64(superblock::SB_BUMP, arena.bump());
            arena.pwrite_u64(superblock::SB_BUMP_INCLL, arena.bump());
            arena.pwrite_u64(superblock::SB_BUMP_EPOCH, 0);
            arena.clwb(superblock::SB_BUMP);
            (None, Vec::new(), Vec::new(), Vec::new())
        } else {
            // Size the pool: start at the default extent, shrink while the
            // pool cannot give every domain an extent, grow while it would
            // overflow the owner table.
            let base = (arena.bump() + 63) & !63;
            let avail = (arena.capacity() as u64).saturating_sub(base);
            let mut extent_bytes = DEFAULT_EXTENT_BYTES;
            while extent_bytes > MIN_EXTENT_BYTES && avail / extent_bytes < ndomains as u64 {
                extent_bytes /= 2;
            }
            while avail / extent_bytes > superblock::MAX_EXTENTS as u64 {
                extent_bytes *= 2;
            }
            let count = (avail / extent_bytes).min(superblock::MAX_EXTENTS as u64) as usize;
            if count < ndomains {
                return Err(Error::Pmem(incll_pmem::Error::OutOfMemory {
                    requested: (MIN_EXTENT_BYTES as usize) * ndomains,
                    capacity: arena.capacity(),
                }));
            }
            let split = arena.carve((extent_bytes * count as u64) as usize, 64)?;
            arena.pwrite_u64(superblock::SB_ARENA_SPLIT, split);
            arena.pwrite_u64(superblock::SB_ARENA_REGION_BYTES, extent_bytes);
            arena.pwrite_u64(superblock::SB_EXTENT_COUNT, count as u64);
            arena.clwb(superblock::SB_ARENA_SPLIT);
            let pool = Pool {
                base: split,
                extent_bytes,
                count,
            };
            let mut frontier = Vec::with_capacity(ndomains);
            let mut limit = Vec::with_capacity(ndomains);
            for d in 0..ndomains {
                // Eagerly claim extent d for shard d: the claim flushes
                // itself, so the pool starts with a durable one-extent
                // chain per shard.
                let claimed = superblock::claim_extent(arena, d, d);
                debug_assert!(claimed, "fresh pool extent must be claimable");
                let start = pool.start(d);
                frontier.push(AtomicU64::new(start));
                limit.push(AtomicU64::new(pool.end(d)));
                arena.pwrite_u64(superblock::shard_bump_off(d), start);
                arena.pwrite_u64(superblock::shard_bump_incll_off(d), start);
                arena.pwrite_u64(superblock::shard_bump_epoch_off(d), 0);
                arena.clwb(superblock::shard_bump_off(d));
            }
            let reserve = (0..ndomains).map(|_| Mutex::new(Vec::new())).collect();
            (Some(pool), frontier, limit, reserve)
        };
        arena.clwb_range(superblock::SB_PALLOC_HEADS, 32);
        arena.sfence();
        Ok(PAlloc {
            inner: Arc::new(Inner {
                arena: arena.clone(),
                root,
                nthreads,
                ndomains,
                failed_low32: vec![Vec::new(); ndomains],
                failed_full: vec![Vec::new(); ndomains],
                pool,
                frontier,
                limit,
                reserve,
                carve_locks: (0..ndomains).map(|_| Mutex::new(())).collect(),
            }),
        })
    }

    /// Reopens a single-domain allocator after a crash. See
    /// [`PAlloc::open_sharded`].
    ///
    /// # Panics
    ///
    /// Panics if the arena carries no allocator root, or if it was created
    /// with more than one domain.
    pub fn open(arena: &PArena, exec_epoch: u64) -> Self {
        Self::open_sharded(arena, &[exec_epoch])
    }

    /// Reopens the allocator after a crash: re-synchronises each domain's
    /// carve frontier, repairs every head cell whose epoch tag names a
    /// failed epoch **of its own domain**, and splices surviving pending
    /// lists (their objects were freed in completed epochs of their domain
    /// and are safe to reuse).
    ///
    /// `exec_epochs[d]` is the first epoch of domain `d`'s new execution;
    /// recovery writes to `d`'s state are tagged with it. Replays cleanly
    /// if interrupted by another crash (no flushes are issued, matching
    /// §4.3).
    ///
    /// This is the sequential convenience; parallel per-shard recovery
    /// uses [`PAlloc::open_staged`] once and then calls
    /// [`PAlloc::recover_domain`] from one worker per shard.
    ///
    /// # Panics
    ///
    /// Panics if the arena carries no allocator root or if
    /// `exec_epochs.len()` differs from the domain count fixed at create.
    pub fn open_sharded(arena: &PArena, exec_epochs: &[u64]) -> Self {
        let this = Self::open_staged(arena, exec_epochs.len());
        for (d, &exec) in exec_epochs.iter().enumerate() {
            this.recover_domain(d, exec);
        }
        this
    }

    /// Stage one of recovery: rebuilds the allocator handle from the
    /// superblock descriptor — domain count, regions, failed-epoch sets —
    /// **without repairing anything**. Every domain must then be repaired
    /// exactly once via [`PAlloc::recover_domain`] before it serves
    /// allocations; distinct domains may be repaired concurrently (each
    /// repair touches only that domain's head cells, watermark line and
    /// object headers).
    ///
    /// The failed-epoch sets are snapshotted here, so the caller must have
    /// recorded every crashed epoch
    /// ([`incll_pmem::superblock::record_failed_epoch_for`]) for **all**
    /// domains before calling.
    ///
    /// # Panics
    ///
    /// Panics if the arena carries no allocator root or if `ndomains`
    /// differs from the domain count fixed at create.
    pub fn open_staged(arena: &PArena, ndomains: usize) -> Self {
        let root = arena.pread_u64(superblock::SB_PALLOC_HEADS);
        let nthreads = arena.pread_u64(superblock::SB_PALLOC_HEADS + 8) as usize;
        let on_media = (arena.pread_u64(superblock::SB_PALLOC_HEADS + 24) as usize).max(1);
        assert!(
            root != 0 && nthreads > 0,
            "arena has no allocator root; format + create first"
        );
        assert_eq!(ndomains, on_media, "one exec epoch per allocator domain");
        let failed_full: Vec<Vec<u64>> = (0..ndomains)
            .map(|d| superblock::failed_epochs_for(arena, d))
            .collect();
        let failed_low32: Vec<Vec<u32>> = failed_full
            .iter()
            .map(|f| f.iter().map(|&e| e as u32).collect())
            .collect();

        let (pool, frontier, limit, reserve) = if ndomains == 1 {
            (None, Vec::new(), Vec::new(), Vec::new())
        } else {
            let split = arena.pread_u64(superblock::SB_ARENA_SPLIT);
            let extent_bytes = arena.pread_u64(superblock::SB_ARENA_REGION_BYTES);
            let count = arena.pread_u64(superblock::SB_EXTENT_COUNT) as usize;
            assert!(
                split != 0 && extent_bytes != 0 && count != 0,
                "multi-domain allocator without an extent-pool descriptor"
            );
            // The pool claimed the rest of the arena at create; reflect
            // that in the transient global frontier.
            arena.set_bump(split + extent_bytes * count as u64);
            let pool = Pool {
                base: split,
                extent_bytes,
                count,
            };
            // Frontiers start at the raw durable watermark; recover_domain
            // rolls each back past its failed epochs and then rebuilds the
            // extent chain (active limit + reserve) from the owner table.
            let frontier: Vec<AtomicU64> = (0..ndomains)
                .map(|d| AtomicU64::new(arena.pread_u64(superblock::shard_bump_off(d))))
                .collect();
            let limit = (0..ndomains)
                .map(|d| AtomicU64::new(frontier[d].load(Ordering::Relaxed)))
                .collect();
            let reserve = (0..ndomains).map(|_| Mutex::new(Vec::new())).collect();
            (Some(pool), frontier, limit, reserve)
        };
        if ndomains == 1 {
            arena.set_bump(arena.pread_u64(superblock::SB_BUMP));
        }
        PAlloc {
            inner: Arc::new(Inner {
                arena: arena.clone(),
                root,
                nthreads,
                ndomains,
                failed_low32,
                failed_full,
                pool,
                frontier,
                limit,
                reserve,
                carve_locks: (0..ndomains).map(|_| Mutex::new(())).collect(),
            }),
        }
    }

    /// Stage two of recovery, for one domain: reverts the domain's carve
    /// watermark if its epoch tag names a failed epoch (un-carving slabs
    /// doomed with the epoch), repairs the domain's head cells against its
    /// own failed set, and splices its surviving pending lists under
    /// `exec_epoch`.
    ///
    /// Touches only domain-owned state, so distinct domains may run
    /// concurrently from different recovery workers; the result is
    /// byte-identical to running the domains sequentially in any order.
    /// Idempotent under re-crash (no flushes; §4.3).
    pub fn recover_domain(&self, domain: usize, exec_epoch: u64) {
        let arena = &self.inner.arena;
        let failed = &self.inner.failed_full[domain];
        // Watermark: the InCLL revert, per shard since v4 (a single-domain
        // allocator's shard-0 triple is the legacy shared one).
        let we = arena.pread_u64(superblock::shard_bump_epoch_off(domain));
        if we != 0 && failed.contains(&we) {
            let logged = arena.pread_u64(superblock::shard_bump_incll_off(domain));
            arena.pwrite_u64(superblock::shard_bump_off(domain), logged);
            arena.pwrite_u64_release(superblock::shard_bump_epoch_off(domain), exec_epoch);
        }
        let wm = arena.pread_u64(superblock::shard_bump_off(domain));
        if self.inner.ndomains == 1 {
            arena.set_bump(wm);
        } else {
            self.inner.frontier[domain].store(wm, Ordering::Relaxed);
            self.rebuild_chain(domain, wm);
        }
        // Head cells: threads × classes lines of this domain, each against
        // the domain's own failed set.
        for t in 0..self.inner.nthreads {
            for c in 0..TOTAL_CLASSES {
                let cell = self.cell(t, domain, c);
                cell::recover_cell(arena, cell, |e| failed.contains(&e), exec_epoch);
            }
        }
        // Surviving pending objects were freed in completed epochs of this
        // domain: they are reusable now. Splice them in, logged under the
        // domain's new epoch.
        self.on_domain_boundary(domain, exec_epoch);
    }

    /// Rebuilds `domain`'s transient extent chain from the durable owner
    /// table after the watermark revert landed the frontier at `frontier`.
    /// Extents are claimed lowest-index-first and never released, so the
    /// shard's owned extents sorted ascending are: fully-carved extents
    /// (end ≤ frontier), then at most one *active* extent containing the
    /// frontier, then *reserve* extents (start ≥ frontier) — extents whose
    /// claims durably landed but whose first carve belonged to a failed
    /// epoch. Reserves are queued for reuse before any fresh claim; the
    /// rebuild itself is read-only media-wise, so it is byte-identical at
    /// every recovery worker count.
    fn rebuild_chain(&self, domain: usize, frontier: u64) {
        let pool = self.inner.pool.as_ref().expect("multi-domain pool");
        let arena = &self.inner.arena;
        let owner = u8::try_from(domain + 1).expect("shard fits the owner byte");
        // Until an owned extent contains the frontier, the shard may not
        // carve (frontier sits exactly on an extent-end boundary).
        let mut limit = frontier;
        let mut reserve = Vec::new();
        for i in 0..pool.count {
            if superblock::extent_owner(arena, i) != owner {
                continue;
            }
            let (s, e) = (pool.start(i), pool.end(i));
            if s <= frontier && frontier < e {
                limit = e;
            } else if s >= frontier {
                reserve.push(u32::try_from(i).expect("extent index fits u32"));
            }
        }
        self.inner.limit[domain].store(limit, Ordering::Relaxed);
        *self.inner.reserve[domain].lock() = reserve;
    }

    /// The extent pool descriptor `(base, extent_bytes, count)`, or `None`
    /// on a single-domain allocator (which carves from the arena's shared
    /// frontier). Diagnostics / tests.
    pub fn extent_pool(&self) -> Option<(u64, u64, usize)> {
        self.inner
            .pool
            .as_ref()
            .map(|p| (p.base, p.extent_bytes, p.count))
    }

    /// The `[start, end)` spans of every extent currently owned by
    /// `domain` (ascending), or an empty list on a single-domain
    /// allocator. Reads the durable owner table. Diagnostics / tests.
    pub fn owned_extents(&self, domain: usize) -> Vec<(u64, u64)> {
        let Some(pool) = self.inner.pool.as_ref() else {
            return Vec::new();
        };
        let owner = u8::try_from(domain + 1).expect("shard fits the owner byte");
        (0..pool.count)
            .filter(|&i| superblock::extent_owner(&self.inner.arena, i) == owner)
            .map(|i| (pool.start(i), pool.end(i)))
            .collect()
    }

    /// The arena this allocator carves from.
    pub fn arena(&self) -> &PArena {
        &self.inner.arena
    }

    /// Reads the two durable header words of the object whose payload
    /// starts at `payload` (an offset from [`PAlloc::alloc`] that is
    /// still live or epoch-protected). Two atomic word loads, no copying,
    /// no header mutation — the **borrowed-read revalidation** primitive:
    /// a live object's header words are rewritten only when the object is
    /// freed (the §5.1 two-word protocol in [`PAlloc::free`]) or spliced
    /// at an epoch boundary, so a reader that snapshots the words at
    /// borrow time and re-reads them later detects a concurrent
    /// free/overwrite of the object without ever touching its payload.
    ///
    /// Best-effort by design: a same-epoch free whose list linkage
    /// happens to reproduce the exact prior words is indistinguishable
    /// from "still live". That is benign for epoch-pinned readers — the
    /// payload bytes themselves are untouched by `free` and cannot be
    /// recycled until the pinned domain's next boundary.
    pub fn payload_header_words(&self, payload: u64) -> (u64, u64) {
        let obj = payload - HEADER_BYTES as u64;
        let a = &self.inner.arena;
        (a.pread_u64(obj), a.pread_u64(obj + 8))
    }

    /// Number of per-thread slots.
    pub fn threads(&self) -> usize {
        self.inner.nthreads
    }

    /// Number of epoch domains the free lists are segregated for.
    pub fn domains(&self) -> usize {
        self.inner.ndomains
    }

    #[inline]
    fn cell(&self, thread: usize, domain: usize, class: usize) -> u64 {
        debug_assert!(
            thread < self.inner.nthreads && domain < self.inner.ndomains && class < TOTAL_CLASSES
        );
        let idx = (thread * self.inner.ndomains + domain) * TOTAL_CLASSES + class;
        self.inner.root + (idx as u64) * cell::CELL_BYTES
    }

    #[inline]
    fn is_failed_low32(&self, domain: usize, e: u32) -> bool {
        // Empty in any execution that never crashed: a single predictable
        // branch on the hot path.
        let f = &self.inner.failed_low32[domain];
        !f.is_empty() && f.contains(&e)
    }

    /// Allocates `size` bytes for `thread` during `epoch` of domain 0,
    /// returning the payload offset (16-byte aligned). Performs **no**
    /// write-backs or fences. (Domain-routed form: [`PAlloc::alloc_in`].)
    ///
    /// # Errors
    ///
    /// [`Error::UnsupportedSize`] above the largest class;
    /// [`Error::Pmem`] when the arena is exhausted.
    pub fn alloc(&self, thread: usize, epoch: u64, size: usize) -> Result<u64, Error> {
        self.alloc_in(thread, 0, epoch, size)
    }

    /// Allocates `size` bytes for `thread` under domain `domain`, whose
    /// current epoch is `epoch`. The object comes from (and its undo tags
    /// live on) that domain's timeline; it must be freed back to the same
    /// domain ([`PAlloc::free_in`]).
    ///
    /// # Errors
    ///
    /// As for [`PAlloc::alloc`].
    pub fn alloc_in(
        &self,
        thread: usize,
        domain: usize,
        epoch: u64,
        size: usize,
    ) -> Result<u64, Error> {
        let class = class_for(size).ok_or(Error::UnsupportedSize { size })?;
        self.alloc_class(thread, domain, epoch, class)
    }

    /// Like [`PAlloc::alloc`] but the returned payload offset is 64-byte
    /// (cache-line) aligned — used for durable tree nodes, whose embedded
    /// logs rely on exact line placement. Domain 0.
    ///
    /// # Errors
    ///
    /// As for [`PAlloc::alloc`].
    pub fn alloc_aligned64(&self, thread: usize, epoch: u64, size: usize) -> Result<u64, Error> {
        self.alloc_aligned64_in(thread, 0, epoch, size)
    }

    /// [`PAlloc::alloc_aligned64`] under domain `domain`.
    ///
    /// # Errors
    ///
    /// As for [`PAlloc::alloc`].
    pub fn alloc_aligned64_in(
        &self,
        thread: usize,
        domain: usize,
        epoch: u64,
        size: usize,
    ) -> Result<u64, Error> {
        let class = class_for_aligned64(size).ok_or(Error::UnsupportedSize { size })?;
        let payload = self.alloc_class(thread, domain, epoch, class)?;
        debug_assert_eq!(payload % 64, 0);
        Ok(payload)
    }

    fn alloc_class(
        &self,
        thread: usize,
        domain: usize,
        epoch: u64,
        class: usize,
    ) -> Result<u64, Error> {
        let arena = &self.inner.arena;
        let cell = self.cell(thread, domain, class);
        let mut head = cell::free_head(arena, cell);
        if head == 0 {
            self.refill(thread, domain, class, epoch)?;
            head = cell::free_head(arena, cell);
        }
        // Decode (and crash-repair) the popped object's header to find the
        // next free object.
        let w0 = arena.pread_u64(head);
        let w1 = arena.pread_u64(head + 8);
        let decoded = header::decode(w0, w1, |e| self.is_failed_low32(domain, e));
        cell::set_free_head(arena, cell, epoch, decoded.next);
        arena.stats().add_palloc_alloc();
        Ok(head + HEADER_BYTES as u64)
    }

    /// Returns the object at `payload` (from [`PAlloc::alloc`]) of `size`
    /// bytes to `thread`'s domain-0 pending list. The object becomes
    /// allocatable at the next epoch boundary (epoch-based reclamation).
    /// Performs **no** write-backs or fences.
    ///
    /// # Panics
    ///
    /// Panics if `size` does not map to a class (it must be the size passed
    /// to `alloc`, or any size in the same class).
    pub fn free(&self, thread: usize, epoch: u64, payload: u64, size: usize) {
        self.free_in(thread, 0, epoch, payload, size);
    }

    /// Returns an object to `thread`'s pending list **of domain `domain`**
    /// — the domain it was allocated under; it becomes allocatable at that
    /// domain's next boundary, once the freeing shard's epoch (which also
    /// removed the last reference) can no longer be rolled back.
    ///
    /// # Panics
    ///
    /// As for [`PAlloc::free`].
    pub fn free_in(&self, thread: usize, domain: usize, epoch: u64, payload: u64, size: usize) {
        let class = class_for(size).expect("free of unsupported size");
        self.free_class(thread, domain, epoch, payload, class);
    }

    /// Returns a 64-aligned object from [`PAlloc::alloc_aligned64`]
    /// (domain 0).
    ///
    /// # Panics
    ///
    /// Panics if `size` does not map to an aligned class.
    pub fn free_aligned64(&self, thread: usize, epoch: u64, payload: u64, size: usize) {
        self.free_aligned64_in(thread, 0, epoch, payload, size);
    }

    /// [`PAlloc::free_aligned64`] into domain `domain`'s pending list.
    ///
    /// # Panics
    ///
    /// Panics if `size` does not map to an aligned class.
    pub fn free_aligned64_in(
        &self,
        thread: usize,
        domain: usize,
        epoch: u64,
        payload: u64,
        size: usize,
    ) {
        let class = class_for_aligned64(size).expect("free of unsupported aligned size");
        self.free_class(thread, domain, epoch, payload, class);
    }

    fn free_class(&self, thread: usize, domain: usize, epoch: u64, payload: u64, class: usize) {
        let arena = &self.inner.arena;
        let cell = self.cell(thread, domain, class);
        let obj = payload - HEADER_BYTES as u64;

        cell::log_pending(arena, cell, epoch);
        let old_head = cell::pend_head(arena, cell);
        self.write_obj_next(obj, old_head, epoch, domain);
        cell::set_pend_head(arena, cell, obj);
        if cell::pend_tail(arena, cell) == 0 {
            cell::set_pend_tail(arena, cell, obj);
        }
        arena.stats().add_palloc_free();
    }

    /// Writes `obj.next := next` with the §5.1 header protocol: the first
    /// modification in `epoch` rewrites both words (log word first, then
    /// current word, same line) with an incremented torn-write counter;
    /// later modifications in the same epoch touch only the current word.
    fn write_obj_next(&self, obj: u64, next: u64, epoch: u64, domain: usize) {
        let arena = &self.inner.arena;
        let e32 = epoch as u32;
        let w0 = arena.pread_u64(obj);
        let w1 = arena.pread_u64(obj + 8);
        let decoded = header::decode(w0, w1, |e| self.is_failed_low32(domain, e));
        if decoded.torn || header::epoch32(w0, w1) != e32 {
            let nc = header::counter(w1).wrapping_add(1) & 3;
            // Log the *crash-repaired* current next, not the raw current
            // word: headers are repaired lazily (decode-time only), so
            // when the previous header write happened in a failed epoch,
            // `ptr(w0)` is exactly the rolled-back value — logging it
            // would resurrect a dead link if this epoch fails too (the
            // undo entry must capture the epoch-start state *as decode
            // defines it*). Harmless garbage only when the object was
            // allocated at epoch start: reverting re-allocates it and
            // nothing follows its next.
            arena.pwrite_u64(obj + 8, header::pack(decoded.next, nc, e32 as u16));
            arena.pwrite_u64_release(obj, header::pack(next, nc, (e32 >> 16) as u16));
            arena.stats().add_incll_alloc();
        } else {
            arena.pwrite_u64_release(
                obj,
                header::pack(next, header::counter(w0), header::epoch16(w0)),
            );
        }
    }

    /// Carves up to `max_objs` (≥ 1) objects of `stride` bytes from
    /// `domain`'s extent chain, returning `(first_object, count)`. The
    /// caller holds the domain's carve lock and logs the watermark move.
    /// When the active extent cannot fit even one object, the next extent
    /// is activated — reserve first, else a fresh claim from the shared
    /// pool — and the frontier jumps to its start (just another watermark
    /// move on the shard's own InCLL timeline).
    fn carve_objects(
        &self,
        domain: usize,
        stride: u64,
        align: u64,
        max_objs: usize,
    ) -> Result<(u64, usize), Error> {
        loop {
            let cur = self.inner.frontier[domain].load(Ordering::Relaxed);
            let limit = self.inner.limit[domain].load(Ordering::Relaxed);
            let aligned = (cur + align - 1) & !(align - 1);
            let fit = limit.saturating_sub(aligned.min(limit)) / stride;
            if fit >= 1 {
                let n = (fit as usize).min(max_objs);
                self.inner.frontier[domain].store(aligned + stride * n as u64, Ordering::Relaxed);
                return Ok((aligned, n));
            }
            self.activate_next_extent(domain, stride)?;
        }
    }

    /// Moves `domain`'s frontier into its next extent: the front of the
    /// reserve chain if one exists (an extent whose claim survived a
    /// crashed epoch, or was queued by an earlier revert), otherwise a
    /// fresh claim of the lowest-index free extent in the shared pool.
    /// Caller holds the domain's carve lock. `OutOfMemory` only when the
    /// pool has no free extent left — the whole arena is exhausted.
    ///
    /// A fresh claim is the one deliberate exception to the flush-free
    /// carve path: the owner byte is CAS'd then clwb+sfence'd inside
    /// [`incll_pmem::superblock::claim_extent`], so the durable claim
    /// always precedes any durable frontier value referencing the extent
    /// (frontiers only persist at checkpoint flushes).
    fn activate_next_extent(&self, domain: usize, stride: u64) -> Result<(), Error> {
        let pool = self.inner.pool.as_ref().expect("multi-domain pool");
        let idx = {
            let mut reserve = self.inner.reserve[domain].lock();
            if reserve.is_empty() {
                self.claim_free_extent(domain, stride)?
            } else {
                reserve.remove(0) as usize
            }
        };
        self.inner.frontier[domain].store(pool.start(idx), Ordering::Relaxed);
        self.inner.limit[domain].store(pool.end(idx), Ordering::Relaxed);
        Ok(())
    }

    /// Claims the lowest-index free extent for `domain`, durably (the
    /// claim CAS flushes itself). Losing a race to another shard just
    /// moves on to the next free index.
    fn claim_free_extent(&self, domain: usize, stride: u64) -> Result<usize, Error> {
        let pool = self.inner.pool.as_ref().expect("multi-domain pool");
        let arena = &self.inner.arena;
        for i in 0..pool.count {
            if superblock::extent_owner(arena, i) == 0 && superblock::claim_extent(arena, i, domain)
            {
                return Ok(i);
            }
        }
        Err(Error::Pmem(incll_pmem::Error::OutOfMemory {
            requested: stride as usize,
            capacity: (pool.extent_bytes * pool.count as u64) as usize,
        }))
    }

    /// Carves a fresh slab for (thread, domain, class) and chains it onto
    /// the free list, InCLL-logging the owning frontier's watermark move
    /// on the domain's own epoch timeline — no write-backs, no fences; a
    /// crash in a failed epoch rolls the frontier back and the slab
    /// un-carves.
    fn refill(&self, thread: usize, domain: usize, class: usize, epoch: u64) -> Result<(), Error> {
        let arena = &self.inner.arena;
        let stride = classes::stride(class) as u64;
        let head_off = classes::header_off_in_stride(class) as u64;
        let align = if classes::is_aligned64(class) {
            64u64
        } else {
            16
        };
        let slab;
        let objs;
        {
            let _g = self.inner.carve_locks[domain].lock();
            let new_frontier;
            if self.inner.ndomains == 1 {
                slab = arena.carve(stride as usize * SLAB_OBJECTS, align as usize)?;
                objs = SLAB_OBJECTS;
                new_frontier = arena.bump();
            } else {
                // Extents may be smaller than a full slab of the largest
                // class; carve whatever fits (at least one object) so small
                // pools never strand extent tails.
                let (s, n) = self.carve_objects(domain, stride, align, SLAB_OBJECTS)?;
                slab = s;
                objs = n;
                new_frontier = self.inner.frontier[domain].load(Ordering::Relaxed);
            }
            // InCLL-log the domain's durable watermark on its first move
            // this epoch (the paper's flush-free protocol, per shard: the
            // triple shares one cache line and the epoch tag lives on the
            // carving shard's own timeline).
            if arena.pread_u64(superblock::shard_bump_epoch_off(domain)) != epoch {
                let old = arena.pread_u64(superblock::shard_bump_off(domain));
                arena.pwrite_u64(superblock::shard_bump_incll_off(domain), old);
                arena.pwrite_u64_release(superblock::shard_bump_epoch_off(domain), epoch);
                arena.stats().add_incll_alloc();
            }
            arena.pwrite_u64_release(superblock::shard_bump_off(domain), new_frontier);
        }
        // Chain the fresh objects: slab[i].next = slab[i+1]; the last one
        // points at the current free head. Fresh headers need no logging:
        // a crash reverts the head swing and the slab is unreachable.
        let cell = self.cell(thread, domain, class);
        let cur_head = cell::free_head(arena, cell);
        let e32 = epoch as u32;
        for i in 0..objs {
            let obj = slab + (i as u64) * stride + head_off;
            let next = if i + 1 < objs { obj + stride } else { cur_head };
            arena.pwrite_u64(obj + 8, header::pack(0, 1, e32 as u16));
            arena.pwrite_u64(obj, header::pack(next, 1, (e32 >> 16) as u16));
        }
        cell::set_free_head(arena, cell, epoch, slab + head_off);
        Ok(())
    }

    /// Domain-0 epoch-boundary hook; see [`PAlloc::on_domain_boundary`].
    pub fn on_epoch_boundary(&self, new_epoch: u64) {
        self.on_domain_boundary(0, new_epoch);
    }

    /// Epoch-boundary hook for domain `domain`: splices every one of its
    /// pending lists onto the matching free list, making objects freed in
    /// the domain's finished epoch allocatable. Runs while the domain's
    /// threads are quiesced; all writes are InCLL-logged under
    /// `new_epoch`, so a crash mid-epoch reverts the splice and the
    /// objects simply wait in pending — never leaked. Other domains'
    /// pending lists (whose frees may still roll back) are untouched.
    pub fn on_domain_boundary(&self, domain: usize, new_epoch: u64) {
        let arena = &self.inner.arena;
        for t in 0..self.inner.nthreads {
            for c in 0..TOTAL_CLASSES {
                let cell = self.cell(t, domain, c);
                let phead = cell::pend_head(arena, cell);
                if phead == 0 {
                    continue;
                }
                let ptail = cell::pend_tail(arena, cell);
                debug_assert_ne!(ptail, 0, "pending list with head but no tail");
                let fhead = cell::free_head(arena, cell);
                // tail.next := old free head (tail was the oldest pending).
                self.write_obj_next(ptail, fhead, new_epoch, domain);
                cell::set_free_head(arena, cell, new_epoch, phead);
                cell::log_pending(arena, cell, new_epoch);
                cell::set_pend_head(arena, cell, 0);
                cell::set_pend_tail(arena, cell, 0);
            }
        }
    }

    /// Registers the boundary hook for every domain on an epoch manager.
    pub fn attach(&self, mgr: &EpochManager) {
        for d in 0..self.inner.ndomains {
            let this = self.clone();
            mgr.add_advance_hook_on(
                d,
                Box::new(move |new_epoch| {
                    this.on_domain_boundary(d, new_epoch);
                }),
            );
        }
    }

    /// Failed-epoch-set **compaction sweep** for `domain`, run inside the
    /// domain's advance (quiesced, pre-flush): rewrites the header of
    /// every object reachable from the domain's free and pending lists so
    /// it is tagged with the current (`epoch`) timeline position instead
    /// of any historic epoch. After the checkpoint flush that follows, no
    /// durable list-reachable header can need a rollback keyed to an
    /// older failed epoch, so those entries may be pruned
    /// ([`incll_pmem::superblock::prune_failed_epochs`]).
    ///
    /// Objects *not* on any list (live allocations) may keep stale tags:
    /// their next header write re-logs from the decoded state, and a
    /// stale undo value only survives into a list when the push that
    /// wrote it is itself rolled back — which re-orphans the object.
    pub fn normalize_lists(&self, domain: usize, epoch: u64) {
        let arena = &self.inner.arena;
        let e32 = epoch as u32;
        for t in 0..self.inner.nthreads {
            for c in 0..TOTAL_CLASSES {
                let cell = self.cell(t, domain, c);
                for head in [cell::free_head(arena, cell), cell::pend_head(arena, cell)] {
                    let mut cur = head;
                    let mut hops = 0usize;
                    while cur != 0 {
                        let w0 = arena.pread_u64(cur);
                        let w1 = arena.pread_u64(cur + 8);
                        let decoded = header::decode(w0, w1, |e| self.is_failed_low32(domain, e));
                        if decoded.torn || header::epoch32(w0, w1) != e32 {
                            self.write_obj_next(cur, decoded.next, epoch, domain);
                        }
                        cur = decoded.next;
                        hops += 1;
                        assert!(hops <= 10_000_000, "list cycle during normalization");
                    }
                }
            }
        }
    }

    /// Walks the free list of `(thread, domain 0, class)`, returning the
    /// object offsets (diagnostics / tests). Applies the same header
    /// repair logic as `alloc`.
    ///
    /// # Panics
    ///
    /// Panics if the list contains a cycle.
    pub fn free_list(&self, thread: usize, class: usize) -> Vec<u64> {
        self.free_list_in(thread, 0, class)
    }

    /// Walks the free list of `(thread, domain, class)`.
    ///
    /// # Panics
    ///
    /// Panics if the list contains a cycle.
    pub fn free_list_in(&self, thread: usize, domain: usize, class: usize) -> Vec<u64> {
        let arena = &self.inner.arena;
        let mut out = Vec::new();
        let mut cur = cell::free_head(arena, self.cell(thread, domain, class));
        while cur != 0 {
            out.push(cur);
            let w0 = arena.pread_u64(cur);
            let w1 = arena.pread_u64(cur + 8);
            cur = header::decode(w0, w1, |e| self.is_failed_low32(domain, e)).next;
            assert!(
                out.len() <= 1_000_000,
                "free list cycle detected for thread {thread} class {class}"
            );
        }
        out
    }

    /// Walks the pending list of `(thread, domain 0, class)` (diagnostics
    /// / tests).
    ///
    /// # Panics
    ///
    /// Panics if the list contains a cycle.
    pub fn pending_list(&self, thread: usize, class: usize) -> Vec<u64> {
        self.pending_list_in(thread, 0, class)
    }

    /// Walks the pending list of `(thread, domain, class)`.
    ///
    /// # Panics
    ///
    /// Panics if the list contains a cycle.
    pub fn pending_list_in(&self, thread: usize, domain: usize, class: usize) -> Vec<u64> {
        let arena = &self.inner.arena;
        let mut out = Vec::new();
        let mut cur = cell::pend_head(arena, self.cell(thread, domain, class));
        while cur != 0 {
            out.push(cur);
            let w0 = arena.pread_u64(cur);
            let w1 = arena.pread_u64(cur + 8);
            cur = header::decode(w0, w1, |e| self.is_failed_low32(domain, e)).next;
            assert!(out.len() <= 1_000_000, "pending list cycle detected");
        }
        out
    }
}

impl std::fmt::Debug for PAlloc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PAlloc")
            .field("threads", &self.inner.nthreads)
            .field("domains", &self.inner.ndomains)
            .field("classes", &TOTAL_CLASSES)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh(nthreads: usize) -> (PArena, PAlloc) {
        let arena = PArena::builder().capacity_bytes(8 << 20).build().unwrap();
        superblock::format(&arena);
        let alloc = PAlloc::create(&arena, nthreads).unwrap();
        (arena, alloc)
    }

    fn tracked(nthreads: usize) -> (PArena, PAlloc) {
        let arena = PArena::builder()
            .capacity_bytes(8 << 20)
            .tracked(true)
            .build()
            .unwrap();
        superblock::format(&arena);
        let alloc = PAlloc::create(&arena, nthreads).unwrap();
        arena.global_flush(); // creation state is durable
        (arena, alloc)
    }

    #[test]
    fn alloc_returns_aligned_distinct_payloads() {
        let (_a, alloc) = fresh(1);
        let x = alloc.alloc(0, 1, 32).unwrap();
        let y = alloc.alloc(0, 1, 32).unwrap();
        assert_ne!(x, y);
        assert_eq!(x % 16, 0);
        assert_eq!(y % 16, 0);
    }

    #[test]
    fn alloc_rejects_oversize() {
        let (_a, alloc) = fresh(1);
        assert!(matches!(
            alloc.alloc(0, 1, 1 << 20),
            Err(Error::UnsupportedSize { .. })
        ));
    }

    #[test]
    fn freed_object_not_reused_same_epoch() {
        let (_a, alloc) = fresh(1);
        let x = alloc.alloc(0, 1, 32).unwrap();
        alloc.free(0, 1, x, 32);
        // Same epoch: x sits in pending, a new alloc must not return it.
        let y = alloc.alloc(0, 1, 32).unwrap();
        assert_ne!(x, y);
        assert_eq!(alloc.pending_list(0, class_for(32).unwrap()).len(), 1);
    }

    #[test]
    fn freed_object_reused_after_boundary() {
        let (_a, alloc) = fresh(1);
        let x = alloc.alloc(0, 1, 32).unwrap();
        alloc.free(0, 1, x, 32);
        alloc.on_epoch_boundary(2);
        assert!(alloc.pending_list(0, class_for(32).unwrap()).is_empty());
        // Spliced to the head: the next alloc returns it.
        let y = alloc.alloc(0, 2, 32).unwrap();
        assert_eq!(x, y);
    }

    #[test]
    fn splice_preserves_all_objects() {
        let (_a, alloc) = fresh(1);
        let class = class_for(32).unwrap();
        let objs: Vec<u64> = (0..10).map(|_| alloc.alloc(0, 1, 32).unwrap()).collect();
        let before_free = alloc.free_list(0, class).len();
        for &o in &objs {
            alloc.free(0, 1, o, 32);
        }
        alloc.on_epoch_boundary(2);
        let after = alloc.free_list(0, class).len();
        assert_eq!(after, before_free + 10);
    }

    #[test]
    fn classes_are_segregated() {
        let (_a, alloc) = fresh(1);
        let x = alloc.alloc(0, 1, 32).unwrap();
        let y = alloc.alloc(0, 1, 320).unwrap();
        alloc.free(0, 1, x, 32);
        alloc.free(0, 1, y, 320);
        assert_eq!(alloc.pending_list(0, class_for(32).unwrap()).len(), 1);
        assert_eq!(alloc.pending_list(0, class_for(320).unwrap()).len(), 1);
    }

    #[test]
    fn threads_have_independent_lists() {
        let (_a, alloc) = fresh(2);
        let x = alloc.alloc(0, 1, 32).unwrap();
        // Cross-thread free: object migrates to thread 1's pending list.
        alloc.free(1, 1, x, 32);
        assert_eq!(alloc.pending_list(1, class_for(32).unwrap()).len(), 1);
        assert!(alloc.pending_list(0, class_for(32).unwrap()).is_empty());
    }

    #[test]
    fn no_flushes_on_alloc_free_path() {
        let (arena, alloc) = fresh(1);
        // Warm up so the slab carve (which logs the watermark durably) is
        // out of the way.
        let warm = alloc.alloc(0, 1, 32).unwrap();
        alloc.free(0, 1, warm, 32);
        let base = arena.stats().snapshot();
        for i in 0..50 {
            let x = alloc.alloc(0, 1, 32).unwrap();
            if i % 2 == 0 {
                alloc.free(0, 1, x, 32);
            }
        }
        let d = arena.stats().snapshot().delta(&base);
        assert_eq!(d.clwb, 0, "allocation path must not write back");
        assert_eq!(d.sfence, 0, "allocation path must not fence");
    }

    #[test]
    fn stats_count_allocs_and_frees() {
        let (arena, alloc) = fresh(1);
        let x = alloc.alloc(0, 1, 32).unwrap();
        alloc.free(0, 1, x, 32);
        assert_eq!(arena.stats().palloc_allocs(), 1);
        assert_eq!(arena.stats().palloc_frees(), 1);
    }

    // ---------------- crash tests ----------------

    #[test]
    fn crash_reverts_allocations_to_epoch_start() {
        let (arena, alloc) = tracked(1);
        let class = class_for(32).unwrap();
        // Epoch 1: warm the free list, then checkpoint.
        let warm = alloc.alloc(0, 1, 32).unwrap();
        alloc.free(0, 1, warm, 32);
        arena.pwrite_u64(superblock::SB_CUR_EPOCH, 2);
        arena.global_flush();
        alloc.on_epoch_boundary(2);
        let free_before: Vec<u64> = alloc.free_list(0, class);

        // Epoch 2: allocate a few objects, then crash.
        for _ in 0..3 {
            alloc.alloc(0, 2, 32).unwrap();
        }
        superblock::record_failed_epoch(&arena, 2).unwrap();
        arena.crash_seeded(11);

        let alloc2 = PAlloc::open(&arena, 3);
        let free_after = alloc2.free_list(0, class);
        assert_eq!(
            free_after, free_before,
            "free list must revert to the epoch-2 start state"
        );
    }

    #[test]
    fn crash_reverts_frees_without_leaking() {
        let (arena, alloc) = tracked(1);
        let class = class_for(32).unwrap();
        let x = alloc.alloc(0, 1, 32).unwrap();
        arena.pwrite_u64(superblock::SB_CUR_EPOCH, 2);
        arena.global_flush();
        alloc.on_epoch_boundary(2);
        let free_before = alloc.free_list(0, class);

        // Epoch 2: free x, crash before the boundary.
        alloc.free(0, 2, x, 32);
        superblock::record_failed_epoch(&arena, 2).unwrap();
        arena.crash_seeded(5);

        let alloc2 = PAlloc::open(&arena, 3);
        // x reverts to "allocated": neither free nor pending.
        let obj = x - HEADER_BYTES as u64;
        assert!(!alloc2.free_list(0, class).contains(&obj));
        assert!(alloc2.pending_list(0, class).is_empty());
        assert_eq!(alloc2.free_list(0, class), free_before);
    }

    #[test]
    fn crash_preserves_completed_epoch_frees() {
        let (arena, alloc) = tracked(1);
        let class = class_for(32).unwrap();
        let x = alloc.alloc(0, 1, 32).unwrap();
        alloc.free(0, 1, x, 32); // freed in epoch 1 (completes below)
        arena.pwrite_u64(superblock::SB_CUR_EPOCH, 2);
        arena.global_flush(); // checkpoint: epoch 1 completed
        alloc.on_epoch_boundary(2);

        // Epoch 2 does nothing; crash.
        superblock::record_failed_epoch(&arena, 2).unwrap();
        arena.crash_seeded(6);

        let alloc2 = PAlloc::open(&arena, 3);
        // The splice happened in epoch 2 and was rolled back, so x sits in
        // pending after recovery... and open() re-splices it into free.
        let obj = x - HEADER_BYTES as u64;
        assert!(
            alloc2.free_list(0, class).contains(&obj),
            "object freed in a completed epoch must be allocatable"
        );
        // And it is reusable.
        let y = alloc2.alloc(0, 3, 32).unwrap();
        assert_eq!(y, x);
    }

    #[test]
    fn crash_reverts_watermark() {
        let (arena, alloc) = tracked(1);
        arena.pwrite_u64(superblock::SB_CUR_EPOCH, 2);
        arena.global_flush();
        let wm_before = arena.pread_u64(superblock::SB_BUMP);

        // Epoch 2: force slab carving in a class never touched before.
        alloc.alloc(0, 2, 320).unwrap();
        assert!(arena.bump() > wm_before);
        superblock::record_failed_epoch(&arena, 2).unwrap();
        arena.crash_seeded(7);

        let _alloc2 = PAlloc::open(&arena, 3);
        assert_eq!(
            arena.pread_u64(superblock::SB_BUMP),
            wm_before,
            "durable watermark must revert to the epoch-start value"
        );
        assert_eq!(arena.bump(), wm_before);
    }

    #[test]
    fn exhaustive_crash_cuts_keep_lists_consistent() {
        // For a workload of allocs + frees in one failed epoch, every
        // seeded crash must recover the exact epoch-start free list.
        for seed in 0..25u64 {
            let (arena, alloc) = tracked(1);
            let class = class_for(32).unwrap();
            let a = alloc.alloc(0, 1, 32).unwrap();
            let b = alloc.alloc(0, 1, 32).unwrap();
            alloc.free(0, 1, a, 32);
            arena.pwrite_u64(superblock::SB_CUR_EPOCH, 2);
            arena.global_flush();
            alloc.on_epoch_boundary(2);
            let baseline = alloc.free_list(0, class);

            // Epoch 2 churn: alloc 2, free b, alloc 1.
            let _c = alloc.alloc(0, 2, 32).unwrap();
            let _d = alloc.alloc(0, 2, 32).unwrap();
            alloc.free(0, 2, b, 32);
            let _e = alloc.alloc(0, 2, 32).unwrap();

            superblock::record_failed_epoch(&arena, 2).unwrap();
            arena.crash_seeded(seed);
            let alloc2 = PAlloc::open(&arena, 3);
            assert_eq!(
                alloc2.free_list(0, class),
                baseline,
                "seed {seed}: free list must match epoch-2 start"
            );
            assert!(alloc2.pending_list(0, class).is_empty());
        }
    }

    #[test]
    fn double_crash_recovery_is_idempotent() {
        let (arena, alloc) = tracked(1);
        let class = class_for(32).unwrap();
        let a = alloc.alloc(0, 1, 32).unwrap();
        alloc.free(0, 1, a, 32);
        arena.pwrite_u64(superblock::SB_CUR_EPOCH, 2);
        arena.global_flush();
        alloc.on_epoch_boundary(2);
        let baseline = alloc.free_list(0, class);

        alloc.alloc(0, 2, 32).unwrap();
        superblock::record_failed_epoch(&arena, 2).unwrap();
        arena.crash_seeded(1);
        // First recovery starts, then crashes again before any checkpoint.
        let alloc2 = PAlloc::open(&arena, 3);
        alloc2.alloc(0, 3, 32).unwrap();
        superblock::record_failed_epoch(&arena, 3).unwrap();
        arena.crash_seeded(2);
        let alloc3 = PAlloc::open(&arena, 4);
        assert_eq!(alloc3.free_list(0, class), baseline);
    }

    #[test]
    fn aligned64_allocations_are_cache_line_aligned() {
        let (_a, alloc) = fresh(1);
        for _ in 0..100 {
            let p = alloc.alloc_aligned64(0, 1, 320).unwrap();
            assert_eq!(p % 64, 0, "node payload must start a cache line");
        }
    }

    #[test]
    fn aligned64_free_and_reuse_roundtrip() {
        let (_a, alloc) = fresh(1);
        let x = alloc.alloc_aligned64(0, 1, 320).unwrap();
        alloc.free_aligned64(0, 1, x, 320);
        alloc.on_epoch_boundary(2);
        let y = alloc.alloc_aligned64(0, 2, 320).unwrap();
        assert_eq!(x, y);
    }

    #[test]
    fn aligned64_and_normal_classes_never_collide() {
        let (_a, alloc) = fresh(1);
        let a = alloc.alloc(0, 1, 320).unwrap(); // normal 320 class
        let b = alloc.alloc_aligned64(0, 1, 320).unwrap(); // aligned class
        assert_ne!(a, b);
        // Objects from different classes never overlap.
        assert!(b + 320 <= a || a + 320 <= b);
    }

    #[test]
    fn aligned64_crash_revert() {
        let (arena, alloc) = tracked(1);
        let class = class_for_aligned64(320).unwrap();
        let warm = alloc.alloc_aligned64(0, 1, 320).unwrap();
        alloc.free_aligned64(0, 1, warm, 320);
        arena.pwrite_u64(superblock::SB_CUR_EPOCH, 2);
        arena.global_flush();
        alloc.on_epoch_boundary(2);
        let baseline = alloc.free_list(0, class);
        for _ in 0..5 {
            alloc.alloc_aligned64(0, 2, 320).unwrap();
        }
        superblock::record_failed_epoch(&arena, 2).unwrap();
        arena.crash_seeded(9);
        let alloc2 = PAlloc::open(&arena, 3);
        assert_eq!(alloc2.free_list(0, class), baseline);
    }

    #[test]
    fn crash_chain_never_resurrects_live_objects() {
        // Regression for a stale-undo-log bug: object headers are repaired
        // lazily (decode-time only), so the first-modification log must
        // capture the *decoded* next, not the raw current word — the raw
        // word may itself be a rolled-back value from an earlier failed
        // epoch, and re-logging it can splice a live object back onto a
        // free list two crashes later. Seen in the wild as a committed
        // key's value buffer being handed out to another key after a
        // chain of (doomed churn, crash, recover, committed churn) rounds.
        use std::collections::HashSet;

        for seed in 0..10u64 {
            let (arena, mut alloc) = tracked(1);
            let class = class_for(32).unwrap();
            let mut rng_state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            let mut rng = move || {
                rng_state ^= rng_state << 13;
                rng_state ^= rng_state >> 7;
                rng_state ^= rng_state << 17;
                rng_state
            };

            // live = allocated objects the "application" still references.
            let mut live: Vec<u64> = Vec::new();
            let mut epoch = 1u64;
            for _ in 0..4 {
                live.push(alloc.alloc(0, epoch, 32).unwrap());
            }
            // Checkpoint the initial state.
            epoch += 1;
            arena.pwrite_u64(superblock::SB_CUR_EPOCH, epoch);
            arena.global_flush();
            alloc.on_epoch_boundary(epoch);
            let mut checkpoint = live.clone();

            for round in 0..8u64 {
                // "Clean restart": the uniform open-equals-recover protocol
                // records the current (empty) epoch as failed and
                // re-splices pendings under the next one — the pattern the
                // full system produces on every reopen.
                superblock::record_failed_epoch(&arena, epoch).unwrap();
                epoch += 1;
                alloc = PAlloc::open(&arena, epoch);

                // Doomed churn: allocs and frees that the crash must undo.
                let mut doomed_live = live.clone();
                for _ in 0..(rng() % 8 + 1) {
                    if rng() % 2 == 0 || doomed_live.is_empty() {
                        doomed_live.push(alloc.alloc(0, epoch, 32).unwrap());
                    } else {
                        let at = (rng() as usize) % doomed_live.len();
                        alloc.free(0, epoch, doomed_live.swap_remove(at), 32);
                    }
                }
                superblock::record_failed_epoch(&arena, epoch).unwrap();
                arena.crash_seeded(seed * 100 + round);

                epoch += 1;
                alloc = PAlloc::open(&arena, epoch);
                live = checkpoint.clone();

                // Invariant: nothing the application still references may
                // appear on the repaired free or pending lists.
                let live_objs: HashSet<u64> =
                    live.iter().map(|p| p - HEADER_BYTES as u64).collect();
                let mut seen = HashSet::new();
                for obj in alloc
                    .free_list(0, class)
                    .into_iter()
                    .chain(alloc.pending_list(0, class))
                {
                    assert!(
                        !live_objs.contains(&obj),
                        "seed {seed} round {round}: live object {obj:#x} resurrected"
                    );
                    assert!(
                        seen.insert(obj),
                        "seed {seed} round {round}: object {obj:#x} listed twice"
                    );
                }

                // Committed churn, then a checkpoint.
                for _ in 0..(rng() % 6 + 1) {
                    if rng() % 2 == 0 || live.is_empty() {
                        live.push(alloc.alloc(0, epoch, 32).unwrap());
                    } else {
                        let at = (rng() as usize) % live.len();
                        alloc.free(0, epoch, live.swap_remove(at), 32);
                    }
                }
                epoch += 1;
                arena.pwrite_u64(superblock::SB_CUR_EPOCH, epoch);
                arena.global_flush();
                alloc.on_epoch_boundary(epoch);
                checkpoint = live.clone();
            }
        }
    }

    // ---------------- epoch domains ----------------

    fn tracked_sharded(nthreads: usize, ndomains: usize) -> (PArena, PAlloc) {
        let arena = PArena::builder()
            .capacity_bytes(8 << 20)
            .tracked(true)
            .build()
            .unwrap();
        superblock::format(&arena);
        let alloc = PAlloc::create_sharded(&arena, nthreads, ndomains).unwrap();
        arena.global_flush(); // creation state is durable
        (arena, alloc)
    }

    #[test]
    fn domains_have_independent_lists() {
        let arena = PArena::builder().capacity_bytes(8 << 20).build().unwrap();
        superblock::format(&arena);
        let alloc = PAlloc::create_sharded(&arena, 1, 2).unwrap();
        assert_eq!(alloc.domains(), 2);
        let x = alloc.alloc_in(0, 0, 1, 32).unwrap();
        let y = alloc.alloc_in(0, 1, 5, 32).unwrap();
        assert_ne!(x, y);
        alloc.free_in(0, 0, 1, x, 32);
        alloc.free_in(0, 1, 5, y, 32);
        assert_eq!(alloc.pending_list_in(0, 0, class_for(32).unwrap()).len(), 1);
        assert_eq!(alloc.pending_list_in(0, 1, class_for(32).unwrap()).len(), 1);
        // Only domain 1's boundary splices domain 1's pendings.
        alloc.on_domain_boundary(1, 6);
        assert_eq!(alloc.pending_list_in(0, 0, class_for(32).unwrap()).len(), 1);
        assert!(alloc
            .pending_list_in(0, 1, class_for(32).unwrap())
            .is_empty());
        assert_eq!(alloc.alloc_in(0, 1, 6, 32).unwrap(), y, "spliced -> reused");
    }

    #[test]
    fn domain_crash_reverts_only_that_domains_lists() {
        // Both domains warm their lists, checkpoint at their own (different)
        // epochs, then domain 1 churns in a doomed epoch and crashes.
        // Domain 1's pops revert to its boundary; domain 0 is untouched.
        let (arena, alloc) = tracked_sharded(1, 2);
        let class = class_for(32).unwrap();
        let keep = alloc.alloc_in(0, 0, 1, 32).unwrap();
        // Warm domain 1's free list inside its epoch 5.
        let w = alloc.alloc_in(0, 1, 5, 32).unwrap();
        alloc.free_in(0, 1, 5, w, 32);
        // Both domains complete a checkpoint (the test flushes everything:
        // a superset of the scoped flush, always legal).
        arena.pwrite_u64(superblock::domain_cur_epoch_off(0), 2);
        arena.pwrite_u64(superblock::domain_cur_epoch_off(1), 6);
        arena.global_flush();
        alloc.on_domain_boundary(0, 2);
        alloc.on_domain_boundary(1, 6);
        let d0_free = alloc.free_list_in(0, 0, class);
        // The boundary splices above ran *after* the flush (tags epoch
        // 2/6), mirroring the real advance; flush again so the spliced
        // state is the durable baseline.
        arena.global_flush();
        let d1_free = alloc.free_list_in(0, 1, class);

        // Domain 1 churns in its (doomed) epoch 6, then crashes.
        alloc.alloc_in(0, 1, 6, 32).unwrap();
        alloc.alloc_in(0, 1, 6, 32).unwrap();
        superblock::record_failed_epoch_for(&arena, 1, 6).unwrap();
        arena.crash_seeded(21);

        let alloc2 = PAlloc::open_sharded(&arena, &[3, 7]);
        assert_eq!(
            alloc2.free_list_in(0, 0, class),
            d0_free,
            "domain 0 must keep its completed state"
        );
        assert_eq!(
            alloc2.free_list_in(0, 1, class),
            d1_free,
            "domain 1 must revert to its own boundary"
        );
        // And the kept domain-0 object is still absent from every list.
        let keep_obj = keep - HEADER_BYTES as u64;
        assert!(!alloc2.free_list_in(0, 0, class).contains(&keep_obj));
        assert!(!alloc2.free_list_in(0, 1, class).contains(&keep_obj));
    }

    #[test]
    fn multi_domain_extents_are_disjoint_and_every_domain_owns_one() {
        let (_arena, alloc) = tracked_sharded(2, 4);
        let (base, ext, count) = alloc.extent_pool().unwrap();
        assert!(ext.is_power_of_two());
        assert_eq!(base % 64, 0);
        assert!(count >= 4, "pool must fit one extent per domain");
        // Create eagerly claimed one extent per domain; no overlap.
        let mut seen = Vec::new();
        for d in 0..4 {
            let owned = alloc.owned_extents(d);
            assert_eq!(owned.len(), 1, "domain {d} starts with one extent");
            for &(s, e) in &owned {
                assert!(s < e && e - s == ext);
                for &(s2, e2) in &seen {
                    assert!(e <= s2 || s >= e2, "extents must not overlap");
                }
            }
            seen.extend(owned);
        }
        // Allocations land inside an extent owned by their own domain.
        for d in 0..4 {
            let p = alloc.alloc_in(0, d, 1, 32).unwrap();
            assert!(
                alloc
                    .owned_extents(d)
                    .iter()
                    .any(|&(s, e)| p >= s && p + 32 <= e),
                "domain {d} payload outside its owned extents"
            );
        }
    }

    #[test]
    fn single_domain_allocator_has_no_extent_pool() {
        let (_a, alloc) = fresh(1);
        assert_eq!(alloc.extent_pool(), None);
        assert!(alloc.owned_extents(0).is_empty());
    }

    #[test]
    fn multi_domain_carve_path_is_flush_free() {
        // The v4 frontier is InCLL-logged per shard: not a single fence or
        // write-back on the carve path (the deleted workaround fenced
        // every carve).
        let (arena, alloc) = tracked_sharded(1, 2);
        let base = arena.stats().snapshot();
        alloc.alloc_in(0, 0, 1, 320).unwrap(); // forces a slab carve
        alloc.alloc_in(0, 1, 5, 700).unwrap(); // and on the other shard
        let d = arena.stats().snapshot().delta(&base);
        assert_eq!(d.clwb, 0, "carve path must not write back");
        assert_eq!(d.sfence, 0, "carve path must not fence");
    }

    #[test]
    fn multi_domain_watermark_reverts_and_doomed_slabs_uncarve() {
        let (arena, alloc) = tracked_sharded(1, 2);
        // Checkpoint both domains at their own epochs.
        arena.pwrite_u64(superblock::domain_cur_epoch_off(0), 2);
        arena.pwrite_u64(superblock::domain_cur_epoch_off(1), 6);
        arena.global_flush();
        let wm0 = arena.pread_u64(superblock::shard_bump_off(0));
        let wm1 = arena.pread_u64(superblock::shard_bump_off(1));

        // Domain 1 carves slabs in its doomed epoch 6; domain 0 carves in
        // its epoch 2, which will complete.
        alloc.alloc_in(0, 1, 6, 320).unwrap();
        alloc.alloc_in(0, 1, 6, 700).unwrap();
        alloc.alloc_in(0, 0, 2, 320).unwrap();
        arena.pwrite_u64(superblock::domain_cur_epoch_off(0), 3);
        arena.global_flush(); // domain 0's epoch 2 completes (superset flush)
        let wm0_after = arena.pread_u64(superblock::shard_bump_off(0));
        assert!(wm0_after > wm0, "domain 0's frontier moved");

        superblock::record_failed_epoch_for(&arena, 1, 6).unwrap();
        arena.crash_seeded(3);
        let alloc2 = PAlloc::open_sharded(&arena, &[4, 7]);
        assert_eq!(
            arena.pread_u64(superblock::shard_bump_off(1)),
            wm1,
            "doomed domain-1 slabs must un-carve (frontier reverts)"
        );
        assert_eq!(
            arena.pread_u64(superblock::shard_bump_off(0)),
            wm0_after,
            "domain 0's completed carve must survive"
        );
        // The reverted frontier hands the same space out again, inside an
        // extent domain 1 owns.
        let p = alloc2.alloc_in(0, 1, 7, 320).unwrap();
        assert!(
            alloc2
                .owned_extents(1)
                .iter()
                .any(|&(s, e)| p >= s && p < e),
            "reused space must sit in a domain-1 extent"
        );
    }

    #[test]
    fn hot_domain_grows_across_the_pool_before_out_of_memory() {
        // The v5 bug this PR fixes: a hot domain used to OOM at its static
        // region boundary while siblings sat on free space. Now it claims
        // free extents until the *pool* is empty — far more than a static
        // 1/ndomains share — and the error is typed. The cold sibling keeps
        // allocating from its own extent afterwards.
        let arena = PArena::builder().capacity_bytes(8 << 20).build().unwrap();
        superblock::format(&arena);
        let alloc = PAlloc::create_sharded(&arena, 1, 2).unwrap();
        let (_base, ext, count) = alloc.extent_pool().unwrap();
        let stride = classes::stride(class_for(4096).unwrap()) as u64;
        let mut got = 0u64;
        let err = loop {
            match alloc.alloc_in(0, 0, 1, 4096) {
                Ok(_) => got += 1,
                Err(e) => break e,
            }
        };
        assert!(matches!(
            err,
            Error::Pmem(incll_pmem::Error::OutOfMemory { .. })
        ));
        // Domain 0 ends up owning every extent except domain 1's.
        assert_eq!(alloc.owned_extents(0).len(), count - 1);
        let static_share = ext * count as u64 / 2;
        assert!(
            got * stride > static_share,
            "hot domain must outgrow its old static share (got {got} objects)"
        );
        // The sibling domain still has its own extent.
        alloc.alloc_in(0, 1, 1, 4096).unwrap();
    }

    #[test]
    fn doomed_epoch_claim_survives_as_reserve_and_is_reused() {
        // A crash after a durable extent claim whose first carve belonged
        // to a failed epoch: the frontier reverts out of the extent, the
        // owner byte stays (claims are never torn and never released), and
        // recovery queues the extent as reserve — reused before any fresh
        // claim, so the owner table is byte-stable across the reuse.
        let (arena, alloc) = tracked_sharded(1, 2);
        arena.pwrite_u64(superblock::domain_cur_epoch_off(0), 2);
        arena.pwrite_u64(superblock::domain_cur_epoch_off(1), 6);
        arena.global_flush();
        let owned_before = alloc.owned_extents(1).len();
        let wm1 = arena.pread_u64(superblock::shard_bump_off(1));

        // Burn through domain 1's active extent in its doomed epoch 6
        // until a fresh claim fires.
        while alloc.owned_extents(1).len() == owned_before {
            alloc.alloc_in(0, 1, 6, 4096).unwrap();
        }
        let owners_after_claim: Vec<u8> = {
            let (_b, _e, count) = alloc.extent_pool().unwrap();
            (0..count)
                .map(|i| superblock::extent_owner(&arena, i))
                .collect()
        };
        superblock::record_failed_epoch_for(&arena, 1, 6).unwrap();
        arena.crash_seeded(11);

        let alloc2 = PAlloc::open_sharded(&arena, &[3, 7]);
        // Frontier reverted out of the claimed extent...
        assert_eq!(arena.pread_u64(superblock::shard_bump_off(1)), wm1);
        // ...but the claim itself survived (flushed at claim time).
        let owners_now: Vec<u8> = {
            let (_b, _e, count) = alloc2.extent_pool().unwrap();
            (0..count)
                .map(|i| superblock::extent_owner(&arena, i))
                .collect()
        };
        assert_eq!(owners_now, owners_after_claim, "claims are never torn");
        assert_eq!(alloc2.owned_extents(1).len(), owned_before + 1);

        // Refilling domain 1 again reuses the reserve extent — the owner
        // table does not change.
        while alloc2.arena().pread_u64(superblock::shard_bump_off(1)) == wm1 {
            alloc2.alloc_in(0, 1, 7, 4096).unwrap();
        }
        let mut spent = 0;
        while spent < 400 {
            alloc2.alloc_in(0, 1, 7, 4096).unwrap();
            spent += 1;
        }
        let owners_final: Vec<u8> = {
            let (_b, _e, count) = alloc2.extent_pool().unwrap();
            (0..count)
                .map(|i| superblock::extent_owner(&arena, i))
                .collect()
        };
        assert_eq!(
            owners_final, owners_after_claim,
            "reserve extents must be consumed before any fresh claim"
        );
    }

    #[test]
    fn normalize_lists_retags_reachable_headers() {
        let (_arena, alloc) = tracked_sharded(1, 2);
        let class = class_for(32).unwrap();
        // Build a free list whose headers are tagged with epoch 1, plus a
        // pending object tagged epoch 2.
        let a = alloc.alloc_in(0, 1, 1, 32).unwrap();
        alloc.free_in(0, 1, 2, a, 32);
        alloc.normalize_lists(1, 9);
        let arena = alloc.arena().clone();
        for obj in alloc
            .free_list_in(0, 1, class)
            .into_iter()
            .chain(alloc.pending_list_in(0, 1, class))
        {
            let w0 = arena.pread_u64(obj);
            let w1 = arena.pread_u64(obj + 8);
            assert_eq!(
                header::epoch32(w0, w1),
                9,
                "every reachable header must carry the sweep epoch"
            );
        }
        // Lists are structurally unchanged by normalization.
        assert_eq!(alloc.pending_list_in(0, 1, class).len(), 1);
    }

    #[test]
    fn concurrent_threads_allocate_independently() {
        let (_arena, alloc) = fresh(4);
        std::thread::scope(|s| {
            for t in 0..4 {
                let alloc = alloc.clone();
                s.spawn(move || {
                    let mut got = Vec::new();
                    for _ in 0..200 {
                        got.push(alloc.alloc(t, 1, 32).unwrap());
                    }
                    got.sort_unstable();
                    got.dedup();
                    assert_eq!(got.len(), 200, "duplicate allocation");
                    for &g in &got {
                        alloc.free(t, 1, g, 32);
                    }
                });
            }
        });
    }
}
