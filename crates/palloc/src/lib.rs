//! Durable memory allocator with in-cache-line-logged free lists (§5).
//!
//! The paper's observation: an allocator is just a durable data structure —
//! a set of free chunks — so the same fine-grain-checkpointing + InCLL
//! recipe applies. This allocator provides:
//!
//! * **Per-(thread, class) free lists** — the pool-allocation style of the
//!   MT+ baseline, lock-free because each thread owns its lists.
//! * **16-byte object headers** ([`header`]) packing `next`, the epoch-start
//!   `next` (the undo log) and a 32-bit epoch into two words via pointer
//!   canonical-form bits plus 2-bit torn-write counters (§5.1).
//! * **InCLL-protected list heads** — one cache line per list pair, logged
//!   in place with release-ordered same-line stores.
//! * **Epoch-based reclamation**: `free` pushes onto a *pending* list;
//!   pending objects are spliced into the allocatable list at the next
//!   epoch boundary, guaranteeing an object is only handed out if it was
//!   free at the start of the epoch. That property is what makes logging
//!   buffer *contents* unnecessary (§5): after a crash the buffer reverts
//!   to free, and nobody can hold a reference to it.
//!
//! No `clwb`/`sfence` ever executes on the allocation or free path.
//!
//! # Example
//!
//! ```
//! use incll_pmem::{superblock, PArena};
//! use incll_palloc::PAlloc;
//!
//! # fn main() -> Result<(), incll_palloc::Error> {
//! let arena = PArena::builder().capacity_bytes(1 << 20).build()?;
//! superblock::format(&arena);
//! let alloc = PAlloc::create(&arena, /*threads*/ 2)?;
//! let buf = alloc.alloc(/*thread*/ 0, /*epoch*/ 1, 32)?;
//! arena.pwrite_u64(buf, 42); // fill the buffer: no flush needed
//! alloc.free(0, 1, buf, 32);
//! # Ok(())
//! # }
//! ```

use std::sync::Arc;

use parking_lot::Mutex;

use incll_epoch::EpochManager;
use incll_pmem::{superblock, PArena};

mod cell;
mod classes;
pub mod header;

pub use classes::{
    class_for, class_for_aligned64, object_bytes, ALIGNED64_CLASS_SIZES, CLASS_SIZES, NUM_CLASSES,
    SLAB_OBJECTS, TOTAL_CLASSES,
};
pub use header::HEADER_BYTES;

/// Errors returned by the durable allocator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// Underlying arena failure (typically out of memory).
    Pmem(incll_pmem::Error),
    /// Requested size exceeds the largest size class.
    UnsupportedSize {
        /// The offending request, in bytes.
        size: usize,
    },
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Pmem(e) => write!(f, "persistent memory error: {e}"),
            Error::UnsupportedSize { size } => write!(
                f,
                "allocation of {size} bytes exceeds the largest size class ({})",
                CLASS_SIZES[NUM_CLASSES - 1]
            ),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Pmem(e) => Some(e),
            _ => None,
        }
    }
}

impl From<incll_pmem::Error> for Error {
    fn from(e: incll_pmem::Error) -> Self {
        Error::Pmem(e)
    }
}

struct Inner {
    arena: PArena,
    /// Base of the head-cell region: `nthreads × TOTAL_CLASSES` cache lines.
    root: u64,
    nthreads: usize,
    /// Low 32 bits of every durable failed epoch (object headers store
    /// 32-bit epochs).
    failed_low32: Vec<u32>,
    /// Full failed epochs (head cells store full epochs).
    failed_full: Vec<u64>,
    /// Serialises durable-watermark updates (slab carving is rare).
    watermark: Mutex<()>,
}

/// The durable allocator (see crate docs). Cheap to clone.
#[derive(Clone)]
pub struct PAlloc {
    inner: Arc<Inner>,
}

impl PAlloc {
    /// Creates a fresh allocator over a formatted arena, carving the
    /// head-cell region and initialising the durable watermark.
    ///
    /// # Errors
    ///
    /// Propagates arena carve failures.
    ///
    /// # Panics
    ///
    /// Panics if `nthreads` is zero.
    pub fn create(arena: &PArena, nthreads: usize) -> Result<Self, Error> {
        assert!(nthreads > 0, "allocator needs at least one thread slot");
        let region = (nthreads * TOTAL_CLASSES) as u64 * cell::CELL_BYTES;
        let root = arena.carve(region as usize, 64)?;
        // Head cells start zeroed (alloc_zeroed arena).
        arena.pwrite_u64(superblock::SB_PALLOC_HEADS, root);
        arena.pwrite_u64(superblock::SB_PALLOC_HEADS + 8, nthreads as u64);
        arena.pwrite_u64(superblock::SB_PALLOC_HEADS + 16, TOTAL_CLASSES as u64);
        // Durable watermark starts at the current bump.
        arena.pwrite_u64(superblock::SB_BUMP, arena.bump());
        arena.pwrite_u64(superblock::SB_BUMP_INCLL, arena.bump());
        arena.pwrite_u64(superblock::SB_BUMP_EPOCH, 0);
        arena.clwb_range(superblock::SB_PALLOC_HEADS, 24);
        arena.clwb(superblock::SB_BUMP);
        arena.sfence();
        Ok(PAlloc {
            inner: Arc::new(Inner {
                arena: arena.clone(),
                root,
                nthreads,
                failed_low32: Vec::new(),
                failed_full: Vec::new(),
                watermark: Mutex::new(()),
            }),
        })
    }

    /// Reopens the allocator after a crash: re-synchronises the bump
    /// watermark, repairs every head cell whose epoch tag names a failed
    /// epoch, and splices surviving pending lists (their objects were freed
    /// in completed epochs and are safe to reuse).
    ///
    /// `exec_epoch` is the first epoch of the new execution; recovery
    /// writes are tagged with it. Replays cleanly if interrupted by another
    /// crash (no flushes are issued, matching §4.3).
    ///
    /// # Panics
    ///
    /// Panics if the arena carries no allocator root.
    pub fn open(arena: &PArena, exec_epoch: u64) -> Self {
        let root = arena.pread_u64(superblock::SB_PALLOC_HEADS);
        let nthreads = arena.pread_u64(superblock::SB_PALLOC_HEADS + 8) as usize;
        assert!(
            root != 0 && nthreads > 0,
            "arena has no allocator root; format + create first"
        );
        let failed_full = superblock::failed_epochs(arena);
        let failed_low32: Vec<u32> = failed_full.iter().map(|&e| e as u32).collect();

        // Watermark: revert to the epoch-start value if the failed epoch
        // carved slabs, then resync the transient bump.
        let we = arena.pread_u64(superblock::SB_BUMP_EPOCH);
        if we != 0 && failed_full.contains(&we) {
            let logged = arena.pread_u64(superblock::SB_BUMP_INCLL);
            arena.pwrite_u64(superblock::SB_BUMP, logged);
            arena.pwrite_u64_release(superblock::SB_BUMP_EPOCH, exec_epoch);
        }
        arena.set_bump(arena.pread_u64(superblock::SB_BUMP));

        let this = PAlloc {
            inner: Arc::new(Inner {
                arena: arena.clone(),
                root,
                nthreads,
                failed_low32,
                failed_full,
                watermark: Mutex::new(()),
            }),
        };
        // Repair all head cells eagerly (nthreads × classes lines).
        for t in 0..nthreads {
            for c in 0..TOTAL_CLASSES {
                let cell = this.cell(t, c);
                cell::recover_cell(
                    arena,
                    cell,
                    |e| this.inner.failed_full.contains(&e),
                    exec_epoch,
                );
            }
        }
        // Surviving pending objects were freed in completed epochs: they
        // are reusable now. Splice them in, logged under the new epoch.
        this.on_epoch_boundary(exec_epoch);
        this
    }

    /// The arena this allocator carves from.
    pub fn arena(&self) -> &PArena {
        &self.inner.arena
    }

    /// Number of per-thread slots.
    pub fn threads(&self) -> usize {
        self.inner.nthreads
    }

    #[inline]
    fn cell(&self, thread: usize, class: usize) -> u64 {
        debug_assert!(thread < self.inner.nthreads && class < TOTAL_CLASSES);
        self.inner.root + ((thread * TOTAL_CLASSES + class) as u64) * cell::CELL_BYTES
    }

    #[inline]
    fn is_failed_low32(&self, e: u32) -> bool {
        // Empty in any execution that never crashed: a single predictable
        // branch on the hot path.
        !self.inner.failed_low32.is_empty() && self.inner.failed_low32.contains(&e)
    }

    /// Allocates `size` bytes for `thread` during `epoch`, returning the
    /// payload offset (16-byte aligned). Performs **no** write-backs or
    /// fences.
    ///
    /// # Errors
    ///
    /// [`Error::UnsupportedSize`] above the largest class;
    /// [`Error::Pmem`] when the arena is exhausted.
    pub fn alloc(&self, thread: usize, epoch: u64, size: usize) -> Result<u64, Error> {
        let class = class_for(size).ok_or(Error::UnsupportedSize { size })?;
        self.alloc_class(thread, epoch, class)
    }

    /// Like [`PAlloc::alloc`] but the returned payload offset is 64-byte
    /// (cache-line) aligned — used for durable tree nodes, whose embedded
    /// logs rely on exact line placement.
    ///
    /// # Errors
    ///
    /// As for [`PAlloc::alloc`].
    pub fn alloc_aligned64(&self, thread: usize, epoch: u64, size: usize) -> Result<u64, Error> {
        let class = class_for_aligned64(size).ok_or(Error::UnsupportedSize { size })?;
        let payload = self.alloc_class(thread, epoch, class)?;
        debug_assert_eq!(payload % 64, 0);
        Ok(payload)
    }

    fn alloc_class(&self, thread: usize, epoch: u64, class: usize) -> Result<u64, Error> {
        let arena = &self.inner.arena;
        let cell = self.cell(thread, class);
        let mut head = cell::free_head(arena, cell);
        if head == 0 {
            self.refill(thread, class, epoch)?;
            head = cell::free_head(arena, cell);
        }
        // Decode (and crash-repair) the popped object's header to find the
        // next free object.
        let w0 = arena.pread_u64(head);
        let w1 = arena.pread_u64(head + 8);
        let decoded = header::decode(w0, w1, |e| self.is_failed_low32(e));
        cell::set_free_head(arena, cell, epoch, decoded.next);
        arena.stats().add_palloc_alloc();
        Ok(head + HEADER_BYTES as u64)
    }

    /// Returns the object at `payload` (from [`PAlloc::alloc`]) of `size`
    /// bytes to `thread`'s pending list. The object becomes allocatable at
    /// the next epoch boundary (epoch-based reclamation). Performs **no**
    /// write-backs or fences.
    ///
    /// # Panics
    ///
    /// Panics if `size` does not map to a class (it must be the size passed
    /// to `alloc`, or any size in the same class).
    pub fn free(&self, thread: usize, epoch: u64, payload: u64, size: usize) {
        let class = class_for(size).expect("free of unsupported size");
        self.free_class(thread, epoch, payload, class);
    }

    /// Returns a 64-aligned object from [`PAlloc::alloc_aligned64`].
    ///
    /// # Panics
    ///
    /// Panics if `size` does not map to an aligned class.
    pub fn free_aligned64(&self, thread: usize, epoch: u64, payload: u64, size: usize) {
        let class = class_for_aligned64(size).expect("free of unsupported aligned size");
        self.free_class(thread, epoch, payload, class);
    }

    fn free_class(&self, thread: usize, epoch: u64, payload: u64, class: usize) {
        let arena = &self.inner.arena;
        let cell = self.cell(thread, class);
        let obj = payload - HEADER_BYTES as u64;

        cell::log_pending(arena, cell, epoch);
        let old_head = cell::pend_head(arena, cell);
        self.write_obj_next(obj, old_head, epoch);
        cell::set_pend_head(arena, cell, obj);
        if cell::pend_tail(arena, cell) == 0 {
            cell::set_pend_tail(arena, cell, obj);
        }
        arena.stats().add_palloc_free();
    }

    /// Writes `obj.next := next` with the §5.1 header protocol: the first
    /// modification in `epoch` rewrites both words (log word first, then
    /// current word, same line) with an incremented torn-write counter;
    /// later modifications in the same epoch touch only the current word.
    fn write_obj_next(&self, obj: u64, next: u64, epoch: u64) {
        let arena = &self.inner.arena;
        let e32 = epoch as u32;
        let w0 = arena.pread_u64(obj);
        let w1 = arena.pread_u64(obj + 8);
        let decoded = header::decode(w0, w1, |e| self.is_failed_low32(e));
        if decoded.torn || header::epoch32(w0, w1) != e32 {
            let nc = header::counter(w1).wrapping_add(1) & 3;
            // Log the *crash-repaired* current next, not the raw current
            // word: headers are repaired lazily (decode-time only), so
            // when the previous header write happened in a failed epoch,
            // `ptr(w0)` is exactly the rolled-back value — logging it
            // would resurrect a dead link if this epoch fails too (the
            // undo entry must capture the epoch-start state *as decode
            // defines it*). Harmless garbage only when the object was
            // allocated at epoch start: reverting re-allocates it and
            // nothing follows its next.
            arena.pwrite_u64(obj + 8, header::pack(decoded.next, nc, e32 as u16));
            arena.pwrite_u64_release(obj, header::pack(next, nc, (e32 >> 16) as u16));
            arena.stats().add_incll_alloc();
        } else {
            arena.pwrite_u64_release(
                obj,
                header::pack(next, header::counter(w0), header::epoch16(w0)),
            );
        }
    }

    /// Carves a fresh slab for (thread, class) and chains it onto the free
    /// list, durably logging the watermark move.
    fn refill(&self, thread: usize, class: usize, epoch: u64) -> Result<(), Error> {
        let arena = &self.inner.arena;
        let stride = classes::stride(class) as u64;
        let head_off = classes::header_off_in_stride(class) as u64;
        let align = if classes::is_aligned64(class) { 64 } else { 16 };
        let slab = arena.carve(stride as usize * SLAB_OBJECTS, align)?;
        {
            let _g = self.inner.watermark.lock();
            // InCLL-log the durable watermark on its first move this epoch.
            if arena.pread_u64(superblock::SB_BUMP_EPOCH) != epoch {
                let old = arena.pread_u64(superblock::SB_BUMP);
                arena.pwrite_u64(superblock::SB_BUMP_INCLL, old);
                arena.pwrite_u64_release(superblock::SB_BUMP_EPOCH, epoch);
                arena.stats().add_incll_alloc();
            }
            arena.pwrite_u64_release(superblock::SB_BUMP, arena.bump());
        }
        // Chain the fresh objects: slab[i].next = slab[i+1]; the last one
        // points at the current free head. Fresh headers need no logging:
        // a crash reverts the watermark and un-carves them wholesale.
        let cell = self.cell(thread, class);
        let cur_head = cell::free_head(arena, cell);
        let e32 = epoch as u32;
        for i in 0..SLAB_OBJECTS {
            let obj = slab + (i as u64) * stride + head_off;
            let next = if i + 1 < SLAB_OBJECTS {
                obj + stride
            } else {
                cur_head
            };
            arena.pwrite_u64(obj + 8, header::pack(0, 1, e32 as u16));
            arena.pwrite_u64(obj, header::pack(next, 1, (e32 >> 16) as u16));
        }
        cell::set_free_head(arena, cell, epoch, slab + head_off);
        Ok(())
    }

    /// Epoch-boundary hook: splices every pending list onto its free list,
    /// making objects freed in the finished epoch allocatable. Runs while
    /// all threads are quiesced; all writes are InCLL-logged under
    /// `new_epoch`, so a crash mid-epoch reverts the splice and the objects
    /// simply wait in pending — never leaked.
    pub fn on_epoch_boundary(&self, new_epoch: u64) {
        let arena = &self.inner.arena;
        for t in 0..self.inner.nthreads {
            for c in 0..TOTAL_CLASSES {
                let cell = self.cell(t, c);
                let phead = cell::pend_head(arena, cell);
                if phead == 0 {
                    continue;
                }
                let ptail = cell::pend_tail(arena, cell);
                debug_assert_ne!(ptail, 0, "pending list with head but no tail");
                let fhead = cell::free_head(arena, cell);
                // tail.next := old free head (tail was the oldest pending).
                self.write_obj_next(ptail, fhead, new_epoch);
                cell::set_free_head(arena, cell, new_epoch, phead);
                cell::log_pending(arena, cell, new_epoch);
                cell::set_pend_head(arena, cell, 0);
                cell::set_pend_tail(arena, cell, 0);
            }
        }
    }

    /// Registers the boundary hook on an epoch manager.
    pub fn attach(&self, mgr: &EpochManager) {
        let this = self.clone();
        mgr.add_advance_hook(Box::new(move |new_epoch| {
            this.on_epoch_boundary(new_epoch);
        }));
    }

    /// Walks the free list of `(thread, class)`, returning the object
    /// offsets (diagnostics / tests). Applies the same header repair logic
    /// as `alloc`.
    ///
    /// # Panics
    ///
    /// Panics if the list contains a cycle.
    pub fn free_list(&self, thread: usize, class: usize) -> Vec<u64> {
        let arena = &self.inner.arena;
        let mut out = Vec::new();
        let mut cur = cell::free_head(arena, self.cell(thread, class));
        while cur != 0 {
            out.push(cur);
            let w0 = arena.pread_u64(cur);
            let w1 = arena.pread_u64(cur + 8);
            cur = header::decode(w0, w1, |e| self.is_failed_low32(e)).next;
            assert!(
                out.len() <= 1_000_000,
                "free list cycle detected for thread {thread} class {class}"
            );
        }
        out
    }

    /// Walks the pending list of `(thread, class)` (diagnostics / tests).
    ///
    /// # Panics
    ///
    /// Panics if the list contains a cycle.
    pub fn pending_list(&self, thread: usize, class: usize) -> Vec<u64> {
        let arena = &self.inner.arena;
        let mut out = Vec::new();
        let mut cur = cell::pend_head(arena, self.cell(thread, class));
        while cur != 0 {
            out.push(cur);
            let w0 = arena.pread_u64(cur);
            let w1 = arena.pread_u64(cur + 8);
            cur = header::decode(w0, w1, |e| self.is_failed_low32(e)).next;
            assert!(out.len() <= 1_000_000, "pending list cycle detected");
        }
        out
    }
}

impl std::fmt::Debug for PAlloc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PAlloc")
            .field("threads", &self.inner.nthreads)
            .field("classes", &TOTAL_CLASSES)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh(nthreads: usize) -> (PArena, PAlloc) {
        let arena = PArena::builder().capacity_bytes(8 << 20).build().unwrap();
        superblock::format(&arena);
        let alloc = PAlloc::create(&arena, nthreads).unwrap();
        (arena, alloc)
    }

    fn tracked(nthreads: usize) -> (PArena, PAlloc) {
        let arena = PArena::builder()
            .capacity_bytes(8 << 20)
            .tracked(true)
            .build()
            .unwrap();
        superblock::format(&arena);
        let alloc = PAlloc::create(&arena, nthreads).unwrap();
        arena.global_flush(); // creation state is durable
        (arena, alloc)
    }

    #[test]
    fn alloc_returns_aligned_distinct_payloads() {
        let (_a, alloc) = fresh(1);
        let x = alloc.alloc(0, 1, 32).unwrap();
        let y = alloc.alloc(0, 1, 32).unwrap();
        assert_ne!(x, y);
        assert_eq!(x % 16, 0);
        assert_eq!(y % 16, 0);
    }

    #[test]
    fn alloc_rejects_oversize() {
        let (_a, alloc) = fresh(1);
        assert!(matches!(
            alloc.alloc(0, 1, 1 << 20),
            Err(Error::UnsupportedSize { .. })
        ));
    }

    #[test]
    fn freed_object_not_reused_same_epoch() {
        let (_a, alloc) = fresh(1);
        let x = alloc.alloc(0, 1, 32).unwrap();
        alloc.free(0, 1, x, 32);
        // Same epoch: x sits in pending, a new alloc must not return it.
        let y = alloc.alloc(0, 1, 32).unwrap();
        assert_ne!(x, y);
        assert_eq!(alloc.pending_list(0, class_for(32).unwrap()).len(), 1);
    }

    #[test]
    fn freed_object_reused_after_boundary() {
        let (_a, alloc) = fresh(1);
        let x = alloc.alloc(0, 1, 32).unwrap();
        alloc.free(0, 1, x, 32);
        alloc.on_epoch_boundary(2);
        assert!(alloc.pending_list(0, class_for(32).unwrap()).is_empty());
        // Spliced to the head: the next alloc returns it.
        let y = alloc.alloc(0, 2, 32).unwrap();
        assert_eq!(x, y);
    }

    #[test]
    fn splice_preserves_all_objects() {
        let (_a, alloc) = fresh(1);
        let class = class_for(32).unwrap();
        let objs: Vec<u64> = (0..10).map(|_| alloc.alloc(0, 1, 32).unwrap()).collect();
        let before_free = alloc.free_list(0, class).len();
        for &o in &objs {
            alloc.free(0, 1, o, 32);
        }
        alloc.on_epoch_boundary(2);
        let after = alloc.free_list(0, class).len();
        assert_eq!(after, before_free + 10);
    }

    #[test]
    fn classes_are_segregated() {
        let (_a, alloc) = fresh(1);
        let x = alloc.alloc(0, 1, 32).unwrap();
        let y = alloc.alloc(0, 1, 320).unwrap();
        alloc.free(0, 1, x, 32);
        alloc.free(0, 1, y, 320);
        assert_eq!(alloc.pending_list(0, class_for(32).unwrap()).len(), 1);
        assert_eq!(alloc.pending_list(0, class_for(320).unwrap()).len(), 1);
    }

    #[test]
    fn threads_have_independent_lists() {
        let (_a, alloc) = fresh(2);
        let x = alloc.alloc(0, 1, 32).unwrap();
        // Cross-thread free: object migrates to thread 1's pending list.
        alloc.free(1, 1, x, 32);
        assert_eq!(alloc.pending_list(1, class_for(32).unwrap()).len(), 1);
        assert!(alloc.pending_list(0, class_for(32).unwrap()).is_empty());
    }

    #[test]
    fn no_flushes_on_alloc_free_path() {
        let (arena, alloc) = fresh(1);
        // Warm up so the slab carve (which logs the watermark durably) is
        // out of the way.
        let warm = alloc.alloc(0, 1, 32).unwrap();
        alloc.free(0, 1, warm, 32);
        let base = arena.stats().snapshot();
        for i in 0..50 {
            let x = alloc.alloc(0, 1, 32).unwrap();
            if i % 2 == 0 {
                alloc.free(0, 1, x, 32);
            }
        }
        let d = arena.stats().snapshot().delta(&base);
        assert_eq!(d.clwb, 0, "allocation path must not write back");
        assert_eq!(d.sfence, 0, "allocation path must not fence");
    }

    #[test]
    fn stats_count_allocs_and_frees() {
        let (arena, alloc) = fresh(1);
        let x = alloc.alloc(0, 1, 32).unwrap();
        alloc.free(0, 1, x, 32);
        assert_eq!(arena.stats().palloc_allocs(), 1);
        assert_eq!(arena.stats().palloc_frees(), 1);
    }

    // ---------------- crash tests ----------------

    #[test]
    fn crash_reverts_allocations_to_epoch_start() {
        let (arena, alloc) = tracked(1);
        let class = class_for(32).unwrap();
        // Epoch 1: warm the free list, then checkpoint.
        let warm = alloc.alloc(0, 1, 32).unwrap();
        alloc.free(0, 1, warm, 32);
        arena.pwrite_u64(superblock::SB_CUR_EPOCH, 2);
        arena.global_flush();
        alloc.on_epoch_boundary(2);
        let free_before: Vec<u64> = alloc.free_list(0, class);

        // Epoch 2: allocate a few objects, then crash.
        for _ in 0..3 {
            alloc.alloc(0, 2, 32).unwrap();
        }
        superblock::record_failed_epoch(&arena, 2).unwrap();
        arena.crash_seeded(11);

        let alloc2 = PAlloc::open(&arena, 3);
        let free_after = alloc2.free_list(0, class);
        assert_eq!(
            free_after, free_before,
            "free list must revert to the epoch-2 start state"
        );
    }

    #[test]
    fn crash_reverts_frees_without_leaking() {
        let (arena, alloc) = tracked(1);
        let class = class_for(32).unwrap();
        let x = alloc.alloc(0, 1, 32).unwrap();
        arena.pwrite_u64(superblock::SB_CUR_EPOCH, 2);
        arena.global_flush();
        alloc.on_epoch_boundary(2);
        let free_before = alloc.free_list(0, class);

        // Epoch 2: free x, crash before the boundary.
        alloc.free(0, 2, x, 32);
        superblock::record_failed_epoch(&arena, 2).unwrap();
        arena.crash_seeded(5);

        let alloc2 = PAlloc::open(&arena, 3);
        // x reverts to "allocated": neither free nor pending.
        let obj = x - HEADER_BYTES as u64;
        assert!(!alloc2.free_list(0, class).contains(&obj));
        assert!(alloc2.pending_list(0, class).is_empty());
        assert_eq!(alloc2.free_list(0, class), free_before);
    }

    #[test]
    fn crash_preserves_completed_epoch_frees() {
        let (arena, alloc) = tracked(1);
        let class = class_for(32).unwrap();
        let x = alloc.alloc(0, 1, 32).unwrap();
        alloc.free(0, 1, x, 32); // freed in epoch 1 (completes below)
        arena.pwrite_u64(superblock::SB_CUR_EPOCH, 2);
        arena.global_flush(); // checkpoint: epoch 1 completed
        alloc.on_epoch_boundary(2);

        // Epoch 2 does nothing; crash.
        superblock::record_failed_epoch(&arena, 2).unwrap();
        arena.crash_seeded(6);

        let alloc2 = PAlloc::open(&arena, 3);
        // The splice happened in epoch 2 and was rolled back, so x sits in
        // pending after recovery... and open() re-splices it into free.
        let obj = x - HEADER_BYTES as u64;
        assert!(
            alloc2.free_list(0, class).contains(&obj),
            "object freed in a completed epoch must be allocatable"
        );
        // And it is reusable.
        let y = alloc2.alloc(0, 3, 32).unwrap();
        assert_eq!(y, x);
    }

    #[test]
    fn crash_reverts_watermark() {
        let (arena, alloc) = tracked(1);
        arena.pwrite_u64(superblock::SB_CUR_EPOCH, 2);
        arena.global_flush();
        let wm_before = arena.pread_u64(superblock::SB_BUMP);

        // Epoch 2: force slab carving in a class never touched before.
        alloc.alloc(0, 2, 320).unwrap();
        assert!(arena.bump() > wm_before);
        superblock::record_failed_epoch(&arena, 2).unwrap();
        arena.crash_seeded(7);

        let _alloc2 = PAlloc::open(&arena, 3);
        assert_eq!(
            arena.pread_u64(superblock::SB_BUMP),
            wm_before,
            "durable watermark must revert to the epoch-start value"
        );
        assert_eq!(arena.bump(), wm_before);
    }

    #[test]
    fn exhaustive_crash_cuts_keep_lists_consistent() {
        // For a workload of allocs + frees in one failed epoch, every
        // seeded crash must recover the exact epoch-start free list.
        for seed in 0..25u64 {
            let (arena, alloc) = tracked(1);
            let class = class_for(32).unwrap();
            let a = alloc.alloc(0, 1, 32).unwrap();
            let b = alloc.alloc(0, 1, 32).unwrap();
            alloc.free(0, 1, a, 32);
            arena.pwrite_u64(superblock::SB_CUR_EPOCH, 2);
            arena.global_flush();
            alloc.on_epoch_boundary(2);
            let baseline = alloc.free_list(0, class);

            // Epoch 2 churn: alloc 2, free b, alloc 1.
            let _c = alloc.alloc(0, 2, 32).unwrap();
            let _d = alloc.alloc(0, 2, 32).unwrap();
            alloc.free(0, 2, b, 32);
            let _e = alloc.alloc(0, 2, 32).unwrap();

            superblock::record_failed_epoch(&arena, 2).unwrap();
            arena.crash_seeded(seed);
            let alloc2 = PAlloc::open(&arena, 3);
            assert_eq!(
                alloc2.free_list(0, class),
                baseline,
                "seed {seed}: free list must match epoch-2 start"
            );
            assert!(alloc2.pending_list(0, class).is_empty());
        }
    }

    #[test]
    fn double_crash_recovery_is_idempotent() {
        let (arena, alloc) = tracked(1);
        let class = class_for(32).unwrap();
        let a = alloc.alloc(0, 1, 32).unwrap();
        alloc.free(0, 1, a, 32);
        arena.pwrite_u64(superblock::SB_CUR_EPOCH, 2);
        arena.global_flush();
        alloc.on_epoch_boundary(2);
        let baseline = alloc.free_list(0, class);

        alloc.alloc(0, 2, 32).unwrap();
        superblock::record_failed_epoch(&arena, 2).unwrap();
        arena.crash_seeded(1);
        // First recovery starts, then crashes again before any checkpoint.
        let alloc2 = PAlloc::open(&arena, 3);
        alloc2.alloc(0, 3, 32).unwrap();
        superblock::record_failed_epoch(&arena, 3).unwrap();
        arena.crash_seeded(2);
        let alloc3 = PAlloc::open(&arena, 4);
        assert_eq!(alloc3.free_list(0, class), baseline);
    }

    #[test]
    fn aligned64_allocations_are_cache_line_aligned() {
        let (_a, alloc) = fresh(1);
        for _ in 0..100 {
            let p = alloc.alloc_aligned64(0, 1, 320).unwrap();
            assert_eq!(p % 64, 0, "node payload must start a cache line");
        }
    }

    #[test]
    fn aligned64_free_and_reuse_roundtrip() {
        let (_a, alloc) = fresh(1);
        let x = alloc.alloc_aligned64(0, 1, 320).unwrap();
        alloc.free_aligned64(0, 1, x, 320);
        alloc.on_epoch_boundary(2);
        let y = alloc.alloc_aligned64(0, 2, 320).unwrap();
        assert_eq!(x, y);
    }

    #[test]
    fn aligned64_and_normal_classes_never_collide() {
        let (_a, alloc) = fresh(1);
        let a = alloc.alloc(0, 1, 320).unwrap(); // normal 320 class
        let b = alloc.alloc_aligned64(0, 1, 320).unwrap(); // aligned class
        assert_ne!(a, b);
        // Objects from different classes never overlap.
        assert!(b + 320 <= a || a + 320 <= b);
    }

    #[test]
    fn aligned64_crash_revert() {
        let (arena, alloc) = tracked(1);
        let class = class_for_aligned64(320).unwrap();
        let warm = alloc.alloc_aligned64(0, 1, 320).unwrap();
        alloc.free_aligned64(0, 1, warm, 320);
        arena.pwrite_u64(superblock::SB_CUR_EPOCH, 2);
        arena.global_flush();
        alloc.on_epoch_boundary(2);
        let baseline = alloc.free_list(0, class);
        for _ in 0..5 {
            alloc.alloc_aligned64(0, 2, 320).unwrap();
        }
        superblock::record_failed_epoch(&arena, 2).unwrap();
        arena.crash_seeded(9);
        let alloc2 = PAlloc::open(&arena, 3);
        assert_eq!(alloc2.free_list(0, class), baseline);
    }

    #[test]
    fn crash_chain_never_resurrects_live_objects() {
        // Regression for a stale-undo-log bug: object headers are repaired
        // lazily (decode-time only), so the first-modification log must
        // capture the *decoded* next, not the raw current word — the raw
        // word may itself be a rolled-back value from an earlier failed
        // epoch, and re-logging it can splice a live object back onto a
        // free list two crashes later. Seen in the wild as a committed
        // key's value buffer being handed out to another key after a
        // chain of (doomed churn, crash, recover, committed churn) rounds.
        use std::collections::HashSet;

        for seed in 0..10u64 {
            let (arena, mut alloc) = tracked(1);
            let class = class_for(32).unwrap();
            let mut rng_state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            let mut rng = move || {
                rng_state ^= rng_state << 13;
                rng_state ^= rng_state >> 7;
                rng_state ^= rng_state << 17;
                rng_state
            };

            // live = allocated objects the "application" still references.
            let mut live: Vec<u64> = Vec::new();
            let mut epoch = 1u64;
            for _ in 0..4 {
                live.push(alloc.alloc(0, epoch, 32).unwrap());
            }
            // Checkpoint the initial state.
            epoch += 1;
            arena.pwrite_u64(superblock::SB_CUR_EPOCH, epoch);
            arena.global_flush();
            alloc.on_epoch_boundary(epoch);
            let mut checkpoint = live.clone();

            for round in 0..8u64 {
                // "Clean restart": the uniform open-equals-recover protocol
                // records the current (empty) epoch as failed and
                // re-splices pendings under the next one — the pattern the
                // full system produces on every reopen.
                superblock::record_failed_epoch(&arena, epoch).unwrap();
                epoch += 1;
                alloc = PAlloc::open(&arena, epoch);

                // Doomed churn: allocs and frees that the crash must undo.
                let mut doomed_live = live.clone();
                for _ in 0..(rng() % 8 + 1) {
                    if rng() % 2 == 0 || doomed_live.is_empty() {
                        doomed_live.push(alloc.alloc(0, epoch, 32).unwrap());
                    } else {
                        let at = (rng() as usize) % doomed_live.len();
                        alloc.free(0, epoch, doomed_live.swap_remove(at), 32);
                    }
                }
                superblock::record_failed_epoch(&arena, epoch).unwrap();
                arena.crash_seeded(seed * 100 + round);

                epoch += 1;
                alloc = PAlloc::open(&arena, epoch);
                live = checkpoint.clone();

                // Invariant: nothing the application still references may
                // appear on the repaired free or pending lists.
                let live_objs: HashSet<u64> =
                    live.iter().map(|p| p - HEADER_BYTES as u64).collect();
                let mut seen = HashSet::new();
                for obj in alloc
                    .free_list(0, class)
                    .into_iter()
                    .chain(alloc.pending_list(0, class))
                {
                    assert!(
                        !live_objs.contains(&obj),
                        "seed {seed} round {round}: live object {obj:#x} resurrected"
                    );
                    assert!(
                        seen.insert(obj),
                        "seed {seed} round {round}: object {obj:#x} listed twice"
                    );
                }

                // Committed churn, then a checkpoint.
                for _ in 0..(rng() % 6 + 1) {
                    if rng() % 2 == 0 || live.is_empty() {
                        live.push(alloc.alloc(0, epoch, 32).unwrap());
                    } else {
                        let at = (rng() as usize) % live.len();
                        alloc.free(0, epoch, live.swap_remove(at), 32);
                    }
                }
                epoch += 1;
                arena.pwrite_u64(superblock::SB_CUR_EPOCH, epoch);
                arena.global_flush();
                alloc.on_epoch_boundary(epoch);
                checkpoint = live.clone();
            }
        }
    }

    #[test]
    fn concurrent_threads_allocate_independently() {
        let (_arena, alloc) = fresh(4);
        std::thread::scope(|s| {
            for t in 0..4 {
                let alloc = alloc.clone();
                s.spawn(move || {
                    let mut got = Vec::new();
                    for _ in 0..200 {
                        got.push(alloc.alloc(t, 1, 32).unwrap());
                    }
                    got.sort_unstable();
                    got.dedup();
                    assert_eq!(got.len(), 200, "duplicate allocation");
                    for &g in &got {
                        alloc.free(t, 1, g, 32);
                    }
                });
            }
        });
    }
}
