//! Compact 16-byte durable object header (paper §5.1).
//!
//! Each free-listable object begins with two 64-bit words, `next` and
//! `nextInCLL`, that together encode *three* logical fields — the current
//! `next` pointer, the epoch-start `next` pointer (the undo log), and a
//! 32-bit epoch — in only 16 bytes:
//!
//! ```text
//! word0 (next):      [63:48] epoch[31:16] | [47:4] next offset | [1:0] counter
//! word1 (nextInCLL): [63:48] epoch[15:0]  | [47:4] old offset  | [1:0] counter
//! ```
//!
//! Offsets are 16-byte aligned, so bits 3:0 of a pointer are zero; two of
//! them host a 2-bit **torn-write counter**. A first-modification-per-epoch
//! rewrites both words (word1 first, then word0, same cache line → PCSO
//! orders them) with an incremented counter. After a crash:
//!
//! * counters differ → the crash hit between the two writes; the epoch
//!   halves are mixed garbage, and `next` must be recovered from
//!   `nextInCLL` (which was written first and therefore persisted first);
//! * counters match → the epoch is trustworthy; if it names a failed
//!   epoch, `next` reverts to `nextInCLL`, otherwise `next` stands.

/// Byte size of the durable object header.
pub const HEADER_BYTES: usize = 16;

const PTR_MASK: u64 = 0x0000_FFFF_FFFF_FFF0;
const CTR_MASK: u64 = 0b11;

/// Packs one header word.
///
/// # Panics
///
/// Debug-asserts that `ptr` is 16-byte aligned and below 2^48.
#[inline]
pub fn pack(ptr: u64, counter: u8, epoch16: u16) -> u64 {
    debug_assert_eq!(ptr & !PTR_MASK, 0, "pointer {ptr:#x} not packable");
    ptr | (counter as u64 & CTR_MASK) | ((epoch16 as u64) << 48)
}

/// Extracts the pointer field.
#[inline]
pub fn ptr(word: u64) -> u64 {
    word & PTR_MASK
}

/// Extracts the 2-bit torn-write counter.
#[inline]
pub fn counter(word: u64) -> u8 {
    (word & CTR_MASK) as u8
}

/// Extracts the 16-bit epoch half.
#[inline]
pub fn epoch16(word: u64) -> u16 {
    (word >> 48) as u16
}

/// Reassembles the 32-bit epoch from both words (valid only when the
/// counters match).
#[inline]
pub fn epoch32(word0: u64, word1: u64) -> u32 {
    ((epoch16(word0) as u32) << 16) | epoch16(word1) as u32
}

/// The decoded, crash-repaired view of an object header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedHeader {
    /// The trustworthy `next` pointer (post-repair).
    pub next: u64,
    /// Whether the header was torn (counters differed).
    pub torn: bool,
    /// The header's 32-bit epoch (meaningless when `torn`).
    pub epoch32: u32,
    /// Current counter value (of `nextInCLL`, the authoritative word when
    /// torn).
    pub counter: u8,
}

/// Decodes a header and resolves which `next` value is trustworthy.
///
/// `is_failed_epoch32` reports whether a reconstructed 32-bit epoch belongs
/// to a failed epoch.
#[inline]
pub fn decode(word0: u64, word1: u64, is_failed_epoch32: impl Fn(u32) -> bool) -> DecodedHeader {
    let c0 = counter(word0);
    let c1 = counter(word1);
    if c0 != c1 {
        // Torn first-modification: word1 persisted, word0 did not.
        return DecodedHeader {
            next: ptr(word1),
            torn: true,
            epoch32: 0,
            counter: c1,
        };
    }
    let e = epoch32(word0, word1);
    let next = if is_failed_epoch32(e) {
        ptr(word1) // revert to the epoch-start value
    } else {
        ptr(word0)
    };
    DecodedHeader {
        next,
        torn: false,
        epoch32: e,
        counter: c0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrip() {
        let w = pack(0x1234_5670, 3, 0xBEEF);
        assert_eq!(ptr(w), 0x1234_5670);
        assert_eq!(counter(w), 3);
        assert_eq!(epoch16(w), 0xBEEF);
    }

    #[test]
    fn epoch_reassembly() {
        let w0 = pack(16, 1, 0xDEAD);
        let w1 = pack(32, 1, 0xBEEF);
        assert_eq!(epoch32(w0, w1), 0xDEAD_BEEF);
    }

    #[test]
    fn decode_clean_not_failed_uses_word0() {
        let w0 = pack(0x100, 2, 0);
        let w1 = pack(0x200, 2, 7);
        let d = decode(w0, w1, |_| false);
        assert_eq!(d.next, 0x100);
        assert!(!d.torn);
        assert_eq!(d.epoch32, 7);
    }

    #[test]
    fn decode_failed_epoch_reverts_to_word1() {
        let w0 = pack(0x100, 2, 0);
        let w1 = pack(0x200, 2, 7);
        let d = decode(w0, w1, |e| e == 7);
        assert_eq!(d.next, 0x200);
    }

    #[test]
    fn decode_torn_uses_word1() {
        let w0 = pack(0x100, 1, 0xAAAA);
        let w1 = pack(0x200, 2, 0xBBBB);
        let d = decode(w0, w1, |_| false);
        assert!(d.torn);
        assert_eq!(d.next, 0x200);
        assert_eq!(d.counter, 2);
    }

    #[test]
    fn counter_wraps_in_two_bits() {
        let w = pack(16, 0b111, 0); // only low 2 bits kept
        assert_eq!(counter(w), 0b11);
        assert_eq!(ptr(w), 16);
    }

    #[test]
    fn null_pointer_packs() {
        let w = pack(0, 1, 0xFFFF);
        assert_eq!(ptr(w), 0);
        assert_eq!(epoch16(w), 0xFFFF);
    }
}
