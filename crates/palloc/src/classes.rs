//! Size classes for the durable allocator.
//!
//! Objects are served from per-(thread, class) free lists. Every object
//! carries a 16-byte durable header ([`crate::header`]), so the class size
//! is `header + payload` rounded to a 16-byte boundary. The paper's value
//! buffers are 32 bytes (§6, footnote 6) and durable Masstree nodes are
//! 320 bytes, so both must map to exact classes.

use crate::HEADER_BYTES;

/// Payload size classes in bytes (excluding the 16-byte object header).
///
/// The largest class bounds [`crate::PAlloc::alloc`]; larger requests are
/// an error (the tree never makes one).
pub const CLASS_SIZES: &[usize] = &[
    16, 32, 48, 64, 96, 128, 192, 256, 320, 384, 512, 768, 1024, 2048, 4096,
];

/// Payload sizes served with **64-byte (cache-line) alignment** — durable
/// tree nodes, whose embedded in-cache-line logs depend on exact line
/// placement. Each object costs an extra 48 bytes of padding so the header
/// still sits at `payload - 16`.
pub const ALIGNED64_CLASS_SIZES: &[usize] = &[320, 576];

/// Number of 16-aligned size classes.
pub const NUM_CLASSES: usize = CLASS_SIZES.len();
/// Total classes including the 64-aligned ones.
pub const TOTAL_CLASSES: usize = NUM_CLASSES + ALIGNED64_CLASS_SIZES.len();

/// Objects per refill slab, per class (kept small for small classes so
/// tests with tiny arenas still work; large enough to amortise carving).
pub const SLAB_OBJECTS: usize = 64;

/// Maps a 16-aligned payload size to its class index.
///
/// Returns `None` for zero or oversized requests.
pub fn class_for(size: usize) -> Option<usize> {
    if size == 0 {
        return None;
    }
    CLASS_SIZES.iter().position(|&c| size <= c)
}

/// Maps a 64-aligned payload size to its (total-index) class.
pub fn class_for_aligned64(size: usize) -> Option<usize> {
    if size == 0 {
        return None;
    }
    ALIGNED64_CLASS_SIZES
        .iter()
        .position(|&c| size <= c)
        .map(|i| NUM_CLASSES + i)
}

/// Whether a (total-index) class serves 64-aligned payloads.
pub fn is_aligned64(class: usize) -> bool {
    class >= NUM_CLASSES
}

/// Distance from an object's slab slot start to its header.
///
/// 64-aligned classes pad the slot so the payload (`header + 16`) lands on
/// a cache line: slot → [48 pad][16 header][payload].
pub fn header_off_in_stride(class: usize) -> usize {
    if is_aligned64(class) {
        48
    } else {
        0
    }
}

/// Slab stride (bytes between consecutive object slots) for a class.
pub fn stride(class: usize) -> usize {
    if is_aligned64(class) {
        48 + HEADER_BYTES + ALIGNED64_CLASS_SIZES[class - NUM_CLASSES]
    } else {
        HEADER_BYTES + CLASS_SIZES[class]
    }
}

/// Total object footprint (header + payload) for a class.
pub fn object_bytes(class: usize) -> usize {
    if is_aligned64(class) {
        HEADER_BYTES + ALIGNED64_CLASS_SIZES[class - NUM_CLASSES]
    } else {
        HEADER_BYTES + CLASS_SIZES[class]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_are_sorted_and_16_aligned() {
        let mut prev = 0;
        for &c in CLASS_SIZES {
            assert!(c > prev);
            assert_eq!(c % 16, 0);
            prev = c;
        }
    }

    #[test]
    fn class_lookup_boundaries() {
        assert_eq!(class_for(0), None);
        assert_eq!(class_for(1), Some(0));
        assert_eq!(class_for(16), Some(0));
        assert_eq!(class_for(17), Some(1));
        assert_eq!(class_for(32), Some(1));
        assert_eq!(class_for(4096), Some(NUM_CLASSES - 1));
        assert_eq!(class_for(4097), None);
    }

    #[test]
    fn paper_sizes_map_exactly() {
        // 32-byte value buffers and 320-byte durable leaves.
        assert_eq!(CLASS_SIZES[class_for(32).unwrap()], 32);
        assert_eq!(CLASS_SIZES[class_for(320).unwrap()], 320);
    }

    #[test]
    fn object_bytes_include_header() {
        let c = class_for(32).unwrap();
        assert_eq!(object_bytes(c), 48);
        assert_eq!(object_bytes(c) % 16, 0);
    }

    #[test]
    fn aligned_classes_index_past_normal_ones() {
        let c = class_for_aligned64(320).unwrap();
        assert!(is_aligned64(c));
        assert_eq!(c, NUM_CLASSES);
        assert!(class_for_aligned64(4096).is_none());
        assert!(class_for_aligned64(0).is_none());
    }

    #[test]
    fn aligned_stride_keeps_payload_on_line() {
        for (i, &sz) in ALIGNED64_CLASS_SIZES.iter().enumerate() {
            let c = NUM_CLASSES + i;
            // Slab slot layout: [48 pad][16 header][payload].
            assert_eq!(stride(c) % 64, 0, "stride of {sz}");
            assert_eq!(header_off_in_stride(c) + HEADER_BYTES, 64);
        }
        // Normal classes: header leads the slot.
        assert_eq!(header_off_in_stride(0), 0);
        assert_eq!(stride(class_for(32).unwrap()), 48);
    }
}
