//! Workspace umbrella for the InCLL reproduction.
//!
//! The real code lives in the member crates; this package hosts the
//! runnable examples (`examples/`) and the cross-crate integration tests
//! (`tests/`). The [`prelude`] re-exports everything those need.
//!
//! The supported public surface is the `Store` facade
//! ([`incll::Store`] / [`incll::Session`] / [`incll::Options`] /
//! [`incll::Error`]); examples and integration tests use only it (plus
//! the transient baselines and the YCSB harness).

/// One-stop imports for examples and integration tests.
pub mod prelude {
    pub use incll::{
        Error, ExtentStats, Options, RangeScan, ReadGuard, RecoveryReport, Session, ShardReplay,
        ShardStats, Store, ValueRef, WriteBatch, MAX_BATCH_OPS, MAX_VALUE_BYTES,
    };
    pub use incll_epoch::{
        AdaptiveCadence, AdvanceDriver, Cadence, DomainCadence, DomainCounters, EpochManager,
        EpochOptions, DEFAULT_EPOCH_INTERVAL,
    };
    pub use incll_masstree::{AllocMode, Masstree, TransientAlloc, TreeCtx};
    pub use incll_pmem::{PArena, PPtr, StatsSnapshot};
    pub use incll_ycsb::{
        load, run, run_with_writes, storage_key, Dist, KvBench, Mix, RunConfig, WriteMode,
    };
}
