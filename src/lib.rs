//! Workspace umbrella for the InCLL reproduction.
//!
//! The real code lives in the member crates; this package hosts the
//! runnable examples (`examples/`) and the cross-crate integration tests
//! (`tests/`). The [`prelude`] re-exports everything those need.

/// One-stop imports for examples and integration tests.
pub mod prelude {
    pub use incll::{DCtx, DurableConfig, DurableMasstree, RecoveryReport, VALUE_BUF_BYTES};
    pub use incll_epoch::{AdvanceDriver, EpochManager, EpochOptions, DEFAULT_EPOCH_INTERVAL};
    pub use incll_extlog::ExtLog;
    pub use incll_masstree::{AllocMode, Masstree, TransientAlloc, TreeCtx};
    pub use incll_palloc::PAlloc;
    pub use incll_pmem::{superblock, PArena, PPtr, StatsSnapshot};
    pub use incll_ycsb::{load, run, storage_key, Dist, Mix, RunConfig};
}
