//! A miniature durable KV service built on the `Store` facade: a
//! hash-sharded keyspace (4 independent InCLL trees, one epoch domain
//! each), background checkpointing with an **adaptive per-shard
//! cadence** (write-hot shards tighten their checkpoint interval, idle
//! shards relax and skip clean ticks), concurrent worker sessions from
//! the RAII pool, byte-slice and `u64` traffic (allocating and
//! zero-copy reads), explicit scoped checkpoints, per-shard cadence
//! observability, a simulated restart, and a YCSB-style traffic report.
//!
//! Run with: `cargo run --release --example kvstore`

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use incll_repro::prelude::*;

const KEYS: u64 = 100_000;
const WORKERS: usize = 2;
/// Keyspace shards: puts/gets route by key hash, scans merge, and every
/// shard checkpoints on its own epoch domain. Fixed at format time —
/// reopening (below) must pass the same count.
const SHARDS: usize = 4;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arena = PArena::builder().capacity_bytes(256 << 20).build()?;
    // The store owns its checkpoint driver: every shard runs the
    // adaptive controller (paper-anchored defaults around the 64 ms
    // epoch), so a write-hot shard tightens its own cadence while idle
    // shards relax toward the ceiling and skip clean ticks entirely.
    let options = Options::new()
        .threads(WORKERS)
        .log_bytes_per_thread(16 << 20)
        .shards(SHARDS)
        .cadence(Cadence::adaptive(AdaptiveCadence::default()));
    let (store, _) = Store::open(&arena, options.clone())?;
    assert_eq!(store.shard_count(), SHARDS);

    // Phase 1: bulk load (the YCSB driver speaks `KvBench`, which `Store`
    // implements).
    let t0 = Instant::now();
    load(&store, KEYS, WORKERS);
    println!("loaded {KEYS} keys in {:?}", t0.elapsed());

    // Phase 2: serve mixed traffic for a second — every worker owns one
    // session from the bounded pool.
    let stop = AtomicBool::new(false);
    let served = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|s| {
        for w in 0..WORKERS {
            let store = store.clone();
            let stop = &stop;
            let served = &served;
            s.spawn(move || {
                let sess = store.session().expect("one slot per worker");
                let mut i = w as u64;
                let mut value = [0u8; 24];
                while !stop.load(Ordering::Relaxed) {
                    let key = storage_key(i % KEYS);
                    match i % 4 {
                        0 => {
                            store.put_u64(&sess, &key, i);
                        }
                        1 => {
                            value[..8].copy_from_slice(&i.to_le_bytes());
                            store.put(&sess, &key, &value).expect("fits size class");
                        }
                        2 => {
                            store.get(&sess, &key);
                        }
                        _ => {
                            // The zero-copy read: borrow the durable bytes
                            // in place under a short epoch pin — no
                            // allocation on the hot serving path.
                            if let Some(v) = store.get_ref(&sess, &key) {
                                std::hint::black_box(v.len());
                            }
                        }
                    }
                    i += WORKERS as u64;
                    served.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        std::thread::sleep(Duration::from_secs(1));
        stop.store(true, Ordering::Relaxed);
    });

    // Where did the controller take each shard? Hot shards sit near the
    // floor of the clamp, idle ones near the ceiling (and their skipped
    // clean ticks are counted rather than paid for).
    println!("\nper-shard checkpoint cadence after 1 s of traffic:");
    for i in 0..store.shard_count() {
        let st = store.shard_stats(i);
        println!(
            "  shard {i}: epoch {:>3}, {:>8} B logged ({} B since last \
             boundary), {} advances + {} skipped, interval {:?}",
            st.epoch,
            st.bytes_logged,
            st.bytes_since_boundary,
            st.advances_fired,
            st.advances_skipped,
            st.current_interval.expect("store owns a cadence driver"),
        );
    }

    // A scoped checkpoint: make one hot key's shard durable *now*,
    // stalling only the sessions pinned in that shard.
    let hot = storage_key(0);
    let shard_epoch = store.checkpoint_shard(store.shard_of(&hot));
    println!(
        "shard {} checkpointed alone at its epoch {}",
        store.shard_of(&hot),
        shard_epoch
    );

    // An atomic cross-shard write batch: both account halves and the
    // audit record commit (or crash away) together — one durable commit
    // record instead of an all-shards barrier on the write path.
    {
        let sess = store.session()?;
        let mut batch = sess.batch();
        batch.put(b"accounts/alice", &900u64.to_le_bytes())?;
        batch.put(b"accounts/bob", &1100u64.to_le_bytes())?;
        batch.put(b"audit/transfer-0001", b"alice->bob:100")?;
        let id = batch.commit()?;
        if id == 0 {
            println!("transfer committed on the single-shard fast path");
        } else {
            println!("cross-shard transfer committed atomically as batch {id}");
        }
    }

    let epoch = store.checkpoint(); // final all-shards barrier
    println!(
        "served {} ops; shard 0 now at epoch {}",
        served.load(Ordering::Relaxed),
        epoch
    );

    // Phase 3: "restart" the service (same arena, fresh handles) — the
    // data survives without any load phase.
    drop(store);
    let (store, report) = Store::open(&arena, options)?;
    let (redone, dropped) = report.per_shard.iter().fold((0u64, 0u64), |(r, d), s| {
        (r + s.batches_redone, d + s.batches_dropped)
    });
    println!(
        "reopened instantly: {} log entries to replay, {redone} in-doubt \
         batches redone, {dropped} dropped (clean shutdown)",
        report.replayed_entries
    );
    let sess = store.session()?;
    let mut count = 0u64;
    store.scan(&sess, b"", usize::MAX, &mut |_, _| count += 1);
    println!("store still holds {count} keys after restart");

    let s = store.arena().stats().snapshot();
    println!(
        "\nlifetime persistence traffic: {} clwb, {} sfence, \
         {} whole-cache + {} scoped flushes, {} ext-logged nodes, {} InCLL logs",
        s.clwb,
        s.sfence,
        s.global_flush,
        s.scoped_flush,
        s.ext_nodes_logged,
        s.incll_perm_logs + s.incll_val_logs
    );
    Ok(())
}
