//! A miniature durable KV service: background checkpointing at the
//! paper's 64 ms cadence, concurrent worker threads, a simulated restart,
//! and a YCSB-style traffic report.
//!
//! Run with: `cargo run --release --example kvstore`

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use incll_repro::prelude::*;

const KEYS: u64 = 100_000;
const WORKERS: usize = 2;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arena = PArena::builder().capacity_bytes(256 << 20).build()?;
    superblock::format(&arena);
    let config = DurableConfig {
        threads: WORKERS,
        log_bytes_per_thread: 16 << 20,
        incll_enabled: true,
    };
    let store = DurableMasstree::create(&arena, config.clone())?;

    // Checkpoint every 64 ms, like the paper.
    let driver = AdvanceDriver::spawn(store.epoch_manager().clone(), DEFAULT_EPOCH_INTERVAL);

    // Phase 1: bulk load.
    let t0 = Instant::now();
    load(&store, KEYS, WORKERS);
    println!("loaded {KEYS} keys in {:?}", t0.elapsed());

    // Phase 2: serve mixed traffic for a second.
    let stop = AtomicBool::new(false);
    let served = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|s| {
        for tid in 0..WORKERS {
            let store = store.clone();
            let stop = &stop;
            let served = &served;
            s.spawn(move || {
                let ctx = store.thread_ctx(tid);
                let mut i = tid as u64;
                while !stop.load(Ordering::Relaxed) {
                    let key = storage_key(i % KEYS);
                    if i.is_multiple_of(2) {
                        store.put(&ctx, &key, i);
                    } else {
                        store.get(&ctx, &key);
                    }
                    i += WORKERS as u64;
                    served.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        std::thread::sleep(Duration::from_secs(1));
        stop.store(true, Ordering::Relaxed);
    });
    driver.stop();
    let epoch = store.epoch_manager().advance(); // final checkpoint
    println!(
        "served {} ops across {} epochs",
        served.load(Ordering::Relaxed),
        epoch
    );

    // Phase 3: "restart" the service (same arena, fresh handles) — the
    // data survives without any load phase.
    drop(store);
    let (store, report) = DurableMasstree::open(&arena, config)?;
    println!(
        "reopened instantly: {} log entries to replay (clean shutdown)",
        report.replayed_entries
    );
    let ctx = store.thread_ctx(0);
    let mut count = 0u64;
    store.scan(&ctx, b"", usize::MAX, &mut |_, _| count += 1);
    println!("store still holds {count} keys after restart");

    let s = arena.stats().snapshot();
    println!(
        "\nlifetime persistence traffic: {} clwb, {} sfence, {} flushes, \
         {} ext-logged nodes, {} InCLL logs",
        s.clwb,
        s.sfence,
        s.global_flush,
        s.ext_nodes_logged,
        s.incll_perm_logs + s.incll_val_logs
    );
    Ok(())
}
