//! The durable allocator on its own (paper §5): allocation and free with
//! zero write-backs, epoch-based reuse, and crash rollback of the free
//! lists.
//!
//! Run with: `cargo run --release --example durable_alloc`

use incll_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arena = PArena::builder()
        .capacity_bytes(16 << 20)
        .tracked(true)
        .build()?;
    superblock::format(&arena);
    let alloc = PAlloc::create(&arena, /*threads*/ 1)?;

    // Epoch 1: allocate three buffers, fill them, free one.
    let a = alloc.alloc(0, 1, 32)?;
    let b = alloc.alloc(0, 1, 32)?;
    let c = alloc.alloc(0, 1, 32)?;
    for (i, &buf) in [a, b, c].iter().enumerate() {
        arena.pwrite_u64(buf, 100 + i as u64); // plain store, no flush
    }
    alloc.free(0, 1, c, 32);
    println!("epoch 1: allocated {a:#x} {b:#x} {c:#x}, freed the last");

    let before = arena.stats().snapshot();
    println!(
        "flush traffic on the alloc/free path so far: {} clwb / {} sfence \
         (creation-time only)",
        before.clwb, before.sfence
    );

    // Epoch boundary: the checkpoint makes epoch 1 durable and the freed
    // buffer becomes reusable (epoch-based reclamation).
    arena.pwrite_u64(superblock::SB_CUR_EPOCH, 2);
    arena.global_flush();
    alloc.on_epoch_boundary(2);
    let reused = alloc.alloc(0, 2, 32)?;
    assert_eq!(reused, c, "freed buffer reused after the boundary");
    println!("epoch 2: buffer {c:#x} recycled");

    // Doomed epoch-2 work: allocations that a crash must revert.
    let doomed = alloc.alloc(0, 2, 32)?;
    alloc.free(0, 2, a, 32);
    println!("epoch 2: allocated {doomed:#x}, freed {a:#x} — then *** CRASH ***");
    superblock::record_failed_epoch(&arena, 2)?;
    arena.crash_seeded(7);

    // Recovery: the allocator reverts to the epoch-2 start — `c` back in
    // the (re-spliced) pending list, the doomed allocation back on the
    // free list, and the doomed free of `a` undone.
    let alloc = PAlloc::open(&arena, 3);
    let first = alloc.alloc(0, 3, 32)?;
    let second = alloc.alloc(0, 3, 32)?;
    assert_eq!(first, c, "epoch-2's first allocation is available again");
    assert_eq!(second, doomed, "the doomed allocation reverted to free");
    assert_eq!(
        arena.pread_u64(a),
        100,
        "buffer `a` is allocated again, contents intact"
    );
    println!("recovered: allocations reverted, freed buffer restored, contents intact");
    Ok(())
}
