//! The durable allocator at work (paper §5), observed through the `Store`
//! facade: every put carves a fresh length-prefixed buffer from a
//! per-thread, InCLL-logged free list — with zero write-backs — and a
//! crash rolls the allocator back together with the tree.
//!
//! Run with: `cargo run --release --example durable_alloc`

use incll_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arena = PArena::builder()
        .capacity_bytes(32 << 20)
        .tracked(true)
        .build()?;
    let options = Options::new().threads(1).log_bytes_per_thread(1 << 20);
    let (store, _) = Store::open(&arena, options.clone())?;
    let sess = store.session()?;

    // Epoch 1: three values across different size classes (each put
    // allocates `8 + len` bytes, floored at the paper's 32-byte buffer).
    store.put(&sess, b"small", b"hi")?; //            32-byte class
    store.put(&sess, b"medium", &[1u8; 100])?; //    128-byte class
    store.put(&sess, b"large", &[2u8; 1000])?; //   1024-byte class
    let s = store.arena().stats().snapshot();
    println!(
        "epoch 1: {} durable allocations (values + tree nodes), {} frees",
        s.palloc_allocs, s.palloc_frees
    );

    // Updating a value allocates a fresh buffer and frees the old one onto
    // the *pending* list; epoch-based reclamation hands it out again only
    // after the next checkpoint, which is why buffer contents never need
    // logging (§5).
    let before = store.arena().stats().snapshot();
    store.put(&sess, b"small", b"ho")?;
    let d = store.arena().stats().snapshot().delta(&before);
    assert_eq!((d.palloc_allocs, d.palloc_frees), (1, 1));
    println!(
        "update: +{} alloc, +{} free, {} clwb, {} sfence — the whole \
         alloc/free path is flush-free",
        d.palloc_allocs, d.palloc_frees, d.clwb, d.sfence
    );
    assert_eq!(d.clwb, 0, "no write-backs on the allocation path");
    assert_eq!(d.sfence, 0, "no fences on the allocation path");

    // Checkpoint, then doomed epoch-2 work the crash must revert.
    store.checkpoint();
    store.put(&sess, b"doomed", &[3u8; 100])?;
    store.put(&sess, b"large", b"doomed overwrite")?;
    store.remove(&sess, b"medium");
    println!("epoch 2: doomed alloc + overwrite + remove — then *** CRASH ***");
    drop(sess);
    drop(store);
    arena.crash_seeded(7);

    // Recovery reverts the allocator to the epoch-2 start: the doomed
    // allocation is back on the free list, the doomed free is undone, and
    // every reverted pointer still sees intact buffer contents.
    let (store, report) = Store::open(&arena, options)?;
    let sess = store.session()?;
    println!(
        "recovered from epoch {}: {} log entries replayed",
        report.failed_epoch, report.replayed_entries
    );
    assert_eq!(store.get(&sess, b"doomed"), None);
    assert_eq!(store.get(&sess, b"small").as_deref(), Some(&b"ho"[..]));
    assert_eq!(
        store.get(&sess, b"medium").as_deref(),
        Some(&[1u8; 100][..])
    );
    assert_eq!(
        store.get(&sess, b"large").as_deref(),
        Some(&[2u8; 1000][..])
    );
    println!("verified: allocations reverted, frees undone, contents intact");

    // And the reverted buffers are genuinely reusable.
    store.put(&sess, b"fresh", &[4u8; 100])?;
    assert_eq!(store.get(&sess, b"fresh").as_deref(), Some(&[4u8; 100][..]));
    println!("post-recovery allocation reuses the reverted buffers");
    Ok(())
}
