//! Crash-recovery demonstration — the paper's §5.2 methodology, live, on
//! the `Store` facade with variable-length byte values.
//!
//! Runs the store on a *tracked* arena in which every write is journaled
//! per cache line under the PCSO model. At a random moment we "pull the
//! plug": each cache line independently keeps only a prefix of its
//! unpersisted stores (exactly the guarantee real hardware gives).
//! Recovery must then roll the store back to the last epoch boundary.
//!
//! Run with: `cargo run --release --example crash_recovery`

use std::collections::BTreeMap;

use incll_repro::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A pseudorandom value of 0..400 bytes (spanning several size classes).
fn random_value(rng: &mut StdRng) -> Vec<u8> {
    let len = rng.gen_range(0..400usize);
    (0..len).map(|_| rng.gen_range(0..=255u8)).collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arena = PArena::builder()
        .capacity_bytes(64 << 20)
        .tracked(true) // journal stores so we can crash adversarially
        .build()?;
    // Four keyspace shards: the crash cuts land across all of them, and
    // recovery must roll every shard back to the same epoch boundary.
    let options = Options::new()
        .threads(1)
        .log_bytes_per_thread(4 << 20)
        .shards(4);
    let (store, _) = Store::open(&arena, options.clone())?;
    let sess = store.session()?;
    let mut rng = StdRng::seed_from_u64(2024);
    let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();

    // A few committed epochs of random work.
    for _ in 0..3 {
        for _ in 0..500 {
            let k = rng.gen_range(0..300u64);
            if rng.gen_bool(0.7) {
                let v = random_value(&mut rng);
                store.put(&sess, &k.to_be_bytes(), &v)?;
                model.insert(k, v);
            } else {
                store.remove(&sess, &k.to_be_bytes());
                model.remove(&k);
            }
        }
        let e = store.checkpoint();
        println!("epoch {e}: checkpointed {} keys", model.len());
    }
    let checkpoint = model.clone();

    // The doomed epoch: work that a crash will erase.
    for _ in 0..400 {
        let k = rng.gen_range(0..300u64);
        if rng.gen_bool(0.7) {
            let v = random_value(&mut rng);
            store.put(&sess, &k.to_be_bytes(), &v)?;
        } else {
            store.remove(&sess, &k.to_be_bytes());
        }
    }
    println!(
        "\ndoomed epoch in flight: {} cache lines hold unpersisted stores",
        arena.unpersisted_lines()
    );

    // Power failure: per-line random prefix cut.
    drop(sess);
    drop(store);
    arena.crash_seeded(rng.gen());
    println!("*** CRASH ***");

    // Recovery: replay the external log, restart epochs; InCLL rollbacks
    // happen lazily as we touch nodes.
    let (store, report) = Store::open(&arena, options)?;
    println!(
        "recovered: failed epoch {}, {} log entries replayed in {:?}",
        report.failed_epoch, report.replayed_entries, report.replay_time
    );
    for s in &report.per_shard {
        println!(
            "  shard {}: {} entries / {} bytes replayed",
            s.shard, s.replayed_entries, s.replayed_bytes
        );
    }

    // Verify: contents must equal the last checkpoint exactly.
    let sess = store.session()?;
    let mut recovered = BTreeMap::new();
    for (key, value) in store.iter(&sess) {
        let k = u64::from_be_bytes(key.as_slice().try_into().expect("8-byte key"));
        recovered.insert(k, value);
    }
    assert_eq!(
        recovered, checkpoint,
        "recovered state diverges from the checkpoint!"
    );
    println!(
        "verified: {} keys ({} value bytes) match the last epoch boundary exactly",
        recovered.len(),
        recovered.values().map(|v| v.len()).sum::<usize>()
    );
    Ok(())
}
