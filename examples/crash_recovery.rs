//! Crash-recovery demonstration — the paper's §5.2 methodology, live.
//!
//! Runs the durable tree on a *tracked* arena in which every store is
//! journaled per cache line under the PCSO model. At a random moment we
//! "pull the plug": each cache line independently keeps only a prefix of
//! its unpersisted stores (exactly the guarantee real hardware gives).
//! Recovery must then roll the tree back to the last epoch boundary.
//!
//! Run with: `cargo run --release --example crash_recovery`

use std::collections::BTreeMap;

use incll_repro::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arena = PArena::builder()
        .capacity_bytes(64 << 20)
        .tracked(true) // journal stores so we can crash adversarially
        .build()?;
    superblock::format(&arena);
    let config = DurableConfig {
        threads: 1,
        log_bytes_per_thread: 4 << 20,
        incll_enabled: true,
    };
    let tree = DurableMasstree::create(&arena, config.clone())?;
    let ctx = tree.thread_ctx(0);
    let mut rng = StdRng::seed_from_u64(2024);
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();

    // A few committed epochs of random work.
    for epoch in 0..3 {
        for _ in 0..500 {
            let k = rng.gen_range(0..300u64);
            if rng.gen_bool(0.7) {
                let v = rng.gen_range(0..1_000_000);
                tree.put(&ctx, &k.to_be_bytes(), v);
                model.insert(k, v);
            } else {
                tree.remove(&ctx, &k.to_be_bytes());
                model.remove(&k);
            }
        }
        let e = tree.epoch_manager().advance();
        println!("epoch {e}: checkpointed {} keys", model.len());
        let _ = epoch;
    }
    let checkpoint = model.clone();

    // The doomed epoch: work that a crash will erase.
    for _ in 0..400 {
        let k = rng.gen_range(0..300u64);
        if rng.gen_bool(0.7) {
            tree.put(&ctx, &k.to_be_bytes(), rng.gen_range(0..1_000_000));
        } else {
            tree.remove(&ctx, &k.to_be_bytes());
        }
    }
    println!(
        "\ndoomed epoch in flight: {} cache lines hold unpersisted stores",
        arena.unpersisted_lines()
    );

    // Power failure: per-line random prefix cut.
    drop(ctx);
    drop(tree);
    arena.crash_seeded(rng.gen());
    println!("*** CRASH ***");

    // Recovery: replay the external log, restart epochs; InCLL rollbacks
    // happen lazily as we touch nodes.
    let (tree, report) = DurableMasstree::open(&arena, config)?;
    println!(
        "recovered: failed epoch {}, {} log entries replayed in {:?}",
        report.failed_epoch, report.replayed_entries, report.replay_time
    );

    // Verify: contents must equal the last checkpoint exactly.
    let ctx = tree.thread_ctx(0);
    let mut recovered = BTreeMap::new();
    tree.scan(&ctx, b"", usize::MAX, &mut |key, val| {
        let k = u64::from_be_bytes(key.try_into().expect("8-byte key"));
        recovered.insert(k, val);
    });
    assert_eq!(
        recovered, checkpoint,
        "recovered state diverges from the checkpoint!"
    );
    println!(
        "verified: {} keys match the last epoch boundary exactly",
        recovered.len()
    );
    Ok(())
}
