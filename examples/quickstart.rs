//! Quickstart: a durable key-value store in five minutes.
//!
//! Creates a durable Masstree in (simulated) persistent memory, writes and
//! reads a few keys, takes a checkpoint, and shows the persistence
//! counters — note the zeros where a conventional NVM structure would pay
//! a flush + fence per operation.
//!
//! Run with: `cargo run --release --example quickstart`

use incll_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. An arena stands in for an NVM device mapping.
    let arena = PArena::builder().capacity_bytes(64 << 20).build()?;
    superblock::format(&arena);

    // 2. Create the durable tree (per-thread allocator + log slots).
    let tree = DurableMasstree::create(
        &arena,
        DurableConfig {
            threads: 2,
            log_bytes_per_thread: 4 << 20,
            incll_enabled: true,
        },
    )?;
    let ctx = tree.thread_ctx(0);

    // 3. Ordinary map operations. Every mutation is crash-recoverable,
    //    yet none of these flushes a cache line.
    tree.put(&ctx, b"tuesday", 2);
    tree.put(&ctx, b"wednesday", 3);
    tree.put(&ctx, b"thursday", 4);
    tree.put(&ctx, b"a-key-longer-than-eight-bytes", 99);

    assert_eq!(tree.get(&ctx, b"wednesday"), Some(3));
    assert_eq!(tree.get(&ctx, b"friday"), None);
    assert_eq!(tree.put(&ctx, b"tuesday", 20), Some(2)); // update
    assert!(tree.remove(&ctx, b"thursday"));

    println!("contents in key order:");
    tree.scan(&ctx, b"", usize::MAX, &mut |key, val| {
        println!("  {:<32} => {val}", String::from_utf8_lossy(key));
    });

    // 4. A checkpoint: one whole-cache flush makes everything above
    //    durable. With the paper's 64 ms cadence this runs in the
    //    background (see `AdvanceDriver`).
    let epoch = tree.epoch_manager().advance();
    println!("\ncheckpointed; now in epoch {epoch}");

    // 5. The paper's economics, visible in the counters.
    let s = arena.stats().snapshot();
    println!("\npersistence counters:");
    println!("  cache-line write-backs (clwb): {}", s.clwb);
    println!("  persistence fences (sfence):   {}", s.sfence);
    println!("  whole-cache flushes:           {}", s.global_flush);
    println!(
        "  in-cache-line logs (free!):    perm={} val={}",
        s.incll_perm_logs, s.incll_val_logs
    );
    println!("  externally logged nodes:       {}", s.ext_nodes_logged);
    Ok(())
}
