//! Quickstart: a durable key-value store in five minutes — open a store,
//! write byte-slice values, checkpoint, crash, and recover, all through
//! the `Store` / `Session` facade.
//!
//! Note the persistence counters at the end: zeros where a conventional
//! NVM structure would pay a flush + fence per operation.
//!
//! Run with: `cargo run --release --example quickstart`

use incll_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. An arena stands in for an NVM device mapping ("tracked" journals
    //    every store so we can simulate a power failure later).
    let arena = PArena::builder()
        .capacity_bytes(64 << 20)
        .tracked(true)
        .build()?;

    // 2. One call does it all: format the blank arena and create a fresh
    //    store (on an existing arena the same call recovers instead).
    //    `shards(2)` splits the keyspace over two independent InCLL trees
    //    under one epoch — fixed at format time, so recovery below passes
    //    the same options.
    let options = Options::new()
        .threads(2)
        .log_bytes_per_thread(4 << 20)
        .shards(2);
    let (store, report) = Store::open(&arena, options.clone())?;
    assert!(report.created);

    // 3. Sessions come from a bounded RAII pool — no raw thread ids.
    let sess = store.session()?;

    // 4. Values are byte slices in durable, size-classed buffers; the
    //    `_u64` forms cover the paper's 8-byte payloads. Every mutation is
    //    crash-recoverable, yet none of these flushes a cache line.
    store.put(&sess, b"tuesday", b"taco night")?;
    store.put(&sess, b"wednesday", b"leftovers, obviously")?;
    store.put(&sess, b"thursday", &vec![42u8; 300])?; // 320-byte class
    store.put_u64(&sess, b"visits", 7);

    assert_eq!(
        store.get(&sess, b"wednesday").as_deref(),
        Some(&b"leftovers, obviously"[..])
    );
    assert_eq!(store.get(&sess, b"friday"), None);
    assert_eq!(
        store.put(&sess, b"tuesday", b"pizza night")?.as_deref(),
        Some(&b"taco night"[..]),
        "put returns the previous value"
    );
    assert_eq!(store.get_u64(&sess, b"visits"), Some(7));
    assert!(store.remove(&sess, b"thursday"));

    println!("contents in key order:");
    for (key, value) in store.iter(&sess) {
        println!(
            "  {:<12} => {} bytes: {:?}",
            String::from_utf8_lossy(&key),
            value.len(),
            String::from_utf8_lossy(&value[..value.len().min(20)]),
        );
    }

    // 5. A checkpoint: one whole-cache flush makes everything above
    //    durable. With the paper's 64 ms cadence this runs in the
    //    background (see `AdvanceDriver`).
    let epoch = store.checkpoint();
    println!("\ncheckpointed; now in epoch {epoch}");

    // 6. Doomed work: written after the checkpoint, erased by the crash.
    store.put(&sess, b"tuesday", b"doomed edit")?;
    store.put(&sess, b"doomed-key", b"never checkpointed")?;

    drop(sess);
    drop(store);
    arena.crash_seeded(2024); // *** power failure ***
    println!("*** CRASH ***");

    // 7. The same open call now recovers: state rolls back to the last
    //    epoch boundary.
    let (store, report) = Store::open(&arena, options)?;
    assert!(!report.created);
    println!(
        "recovered: failed epoch {}, {} log entries replayed in {:?}",
        report.failed_epoch, report.replayed_entries, report.replay_time
    );
    let sess = store.session()?;
    assert_eq!(
        store.get(&sess, b"tuesday").as_deref(),
        Some(&b"pizza night"[..]),
        "checkpointed value survived the crash"
    );
    assert_eq!(
        store.get(&sess, b"doomed-key"),
        None,
        "doomed write rolled back"
    );

    // 8. The paper's economics, visible in the counters.
    let s = store.arena().stats().snapshot();
    println!("\npersistence counters:");
    println!("  cache-line write-backs (clwb): {}", s.clwb);
    println!("  persistence fences (sfence):   {}", s.sfence);
    println!("  whole-cache flushes:           {}", s.global_flush);
    println!(
        "  in-cache-line logs (free!):    perm={} val={}",
        s.incll_perm_logs, s.incll_val_logs
    );
    println!("  externally logged nodes:       {}", s.ext_nodes_logged);
    Ok(())
}
