//! The store behind a socket: an in-process TCP front-end with group
//! commit, driven by the `incll_ycsb::net` clients — a durable bulk
//! load over BATCH frames, pipelined GET/PUT/SCAN round trips, a
//! closed-loop throughput burst, an open-loop latency probe at a fixed
//! QPS target, and the server's own STATS counters to close the books.
//!
//! Run with: `cargo run --release --example net_kv`

use std::net::TcpListener;

use incll_repro::prelude::*;
use incll_server::{CommitMode, GroupConfig, Request, Response, Server, ServerConfig};
use incll_ycsb::{net_load, run_closed_loop, run_open_loop, Dist, Mix, NetClient, NetRunConfig};

const KEYS: u64 = 20_000;
const WORKERS: usize = 2;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arena = PArena::builder().capacity_bytes(256 << 20).build()?;
    // Workers + committer + a spare for ad-hoc sessions below.
    let options = Options::new()
        .threads(WORKERS + 2)
        .log_bytes_per_thread(16 << 20)
        .shards(2);
    let (store, _) = Store::open(&arena, options)?;

    // Group commit: every small write from every connection joins the
    // open 200 µs window and the whole group pays one fence pair.
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let server = Server::start(
        store.clone(),
        listener,
        ServerConfig {
            workers: WORKERS,
            commit: CommitMode::Group(GroupConfig::default()),
            ..ServerConfig::default()
        },
    )?;
    let addr = server.local_addr();
    println!("serving on {addr} (group commit, {WORKERS} workers)");

    // Bulk load over the wire: chunked durable BATCH frames.
    net_load(addr, KEYS, 24, 512)?;
    println!("loaded {KEYS} keys over the socket");

    // Read-your-write under group commit: a write is applied when its
    // *group* commits, so a read pipelined behind an unacknowledged
    // write may execute first. The `OK` ack is the visibility point —
    // wait for it before reading the key back.
    let mut client = NetClient::connect(addr)?;
    assert_eq!(
        client.call(&Request::Put {
            key: b"net/answer".to_vec(),
            val: b"42".to_vec(),
        })?,
        Response::Ok
    );
    // Now pipeline: two requests on the wire before either response is
    // read; answers come back strictly in request order.
    client.send(&Request::Get {
        key: b"net/answer".to_vec(),
    })?;
    client.send(&Request::Scan {
        start: b"net/".to_vec(),
        limit: 1,
    })?;
    client.flush()?;
    assert_eq!(client.recv()?, Response::Value(b"42".to_vec()));
    let Response::Entries(entries) = client.recv()? else {
        panic!("scan must answer second");
    };
    assert_eq!(entries[0].0, b"net/answer");
    println!("acked put, then pipelined get/scan answered in request order");

    // Closed loop: every connection keeps a full pipeline in flight.
    let closed = run_closed_loop(
        addr,
        &NetRunConfig {
            connections: 4,
            pipeline: 8,
            ops_per_conn: 5_000,
            nkeys: KEYS,
            mix: Mix::A,
            dist: Dist::Uniform,
            value_len: 24,
            seed: 7,
        },
    )?;
    assert_eq!(closed.errors, 0);
    println!(
        "closed loop: {} ops in {:.2} s = {:.0} kops/s",
        closed.ops,
        closed.secs,
        closed.kops()
    );

    // Open loop: a fixed arrival schedule, latency measured from the
    // *intended* send time, so queueing delay is charged to the server
    // (no coordinated omission).
    let open = run_open_loop(
        addr,
        &NetRunConfig {
            connections: 2,
            pipeline: 1,
            ops_per_conn: 1_250, // ~0.5 s of schedule at the target rate
            nkeys: KEYS,
            mix: Mix::A,
            dist: Dist::Uniform,
            value_len: 24,
            seed: 11,
        },
        5_000.0,
    )?;
    assert_eq!(open.errors, 0);
    println!(
        "open loop @ {} QPS target: achieved {:.0}, p50 {:.0} µs, p95 {:.0} µs, p99 {:.0} µs",
        open.target_qps,
        open.achieved_qps(),
        open.p50_us,
        open.p95_us,
        open.p99_us
    );

    // The server keeps its own books: request counters, group-commit
    // coalescing, and the arena's fence traffic.
    let Response::Stats(json) = client.call(&Request::Stats)? else {
        panic!("stats must answer");
    };
    assert!(json.contains("\"commit_mode\":\"group\""));
    println!("server stats: {json}");

    let (groups, ops) = server.group_stats();
    assert!(groups > 0 && ops >= groups);
    println!(
        "group commit coalesced {ops} writes into {groups} durable groups \
         ({:.1} writes/group)",
        ops as f64 / groups as f64
    );
    Ok(())
}
