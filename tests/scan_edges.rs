//! Scan edge cases on the durable store: empty stores, boundary starts,
//! layer crossings, limits, iterator range bounds, scans racing recovery,
//! and the k-way merge across keyspace shards.

use incll_repro::prelude::*;

/// Shard counts the merge-sensitive cases run at (1 = the native
/// single-tree scan, 2 and 8 = genuine merges).
const SHARD_COUNTS: [usize; 3] = [1, 2, 8];

fn store_with(shards: usize) -> (PArena, Store, Session) {
    let arena = PArena::builder()
        .capacity_bytes(32 << 20)
        .tracked(true)
        .build()
        .unwrap();
    let (s, _) = Store::open(
        &arena,
        Options::new()
            .threads(1)
            .log_bytes_per_thread(1 << 20)
            .shards(shards),
    )
    .unwrap();
    let sess = s.session().unwrap();
    (arena, s, sess)
}

fn store() -> (PArena, Store, Session) {
    store_with(1)
}

fn val_of(v: &[u8]) -> u64 {
    u64::from_le_bytes(v[..8].try_into().unwrap())
}

#[test]
fn scan_of_empty_store_returns_nothing() {
    let (_a, s, sess) = store();
    let mut hits = 0;
    assert_eq!(s.scan(&sess, b"", 10, &mut |_, _| hits += 1), 0);
    assert_eq!(s.scan(&sess, b"zzz", usize::MAX, &mut |_, _| hits += 1), 0);
    assert_eq!(hits, 0);
    assert_eq!(s.iter(&sess).count(), 0);
}

#[test]
fn scan_limit_zero_is_a_noop() {
    let (_a, s, sess) = store();
    s.put(&sess, b"a", b"1").unwrap();
    assert_eq!(s.scan(&sess, b"", 0, &mut |_, _| panic!("no visits")), 0);
}

#[test]
fn scan_start_past_last_key() {
    let (_a, s, sess) = store();
    for i in 0..50u64 {
        s.put_u64(&sess, &i.to_be_bytes(), i);
    }
    let mut hits = 0;
    s.scan(&sess, &100u64.to_be_bytes(), 10, &mut |_, _| hits += 1);
    assert_eq!(hits, 0);
}

#[test]
fn scan_start_exactly_on_a_key_is_inclusive() {
    let (_a, s, sess) = store();
    for i in 0..20u64 {
        s.put_u64(&sess, &i.to_be_bytes(), i);
    }
    let mut got = Vec::new();
    s.scan(&sess, &7u64.to_be_bytes(), 3, &mut |_, v| {
        got.push(val_of(v))
    });
    assert_eq!(got, vec![7, 8, 9]);
}

#[test]
fn scan_start_between_keys_rounds_up() {
    let (_a, s, sess) = store();
    for i in (0..40u64).step_by(4) {
        s.put_u64(&sess, &i.to_be_bytes(), i);
    }
    let mut got = Vec::new();
    s.scan(&sess, &5u64.to_be_bytes(), 2, &mut |_, v| {
        got.push(val_of(v))
    });
    assert_eq!(got, vec![8, 12]);
}

#[test]
fn scan_descends_into_layers_at_the_start_key() {
    let (_a, s, sess) = store();
    // One slice prefix with several suffixes → a sub-layer.
    for suffix in ["", "-a", "-b", "-c"] {
        s.put_u64(
            &sess,
            format!("prefix01{suffix}").as_bytes(),
            suffix.len() as u64,
        );
    }
    s.put_u64(&sess, b"prefix02", 99);
    // Start *inside* the layer: must pick up -b, -c, then the next slice.
    let mut got = Vec::new();
    s.scan(&sess, b"prefix01-b", 10, &mut |k, _| {
        got.push(String::from_utf8_lossy(k).into_owned())
    });
    assert_eq!(got, vec!["prefix01-b", "prefix01-c", "prefix02"]);
}

#[test]
fn scan_emits_full_keys_across_layers() {
    let (_a, s, sess) = store();
    let long = vec![b'q'; 30];
    s.put(&sess, &long, b"deep").unwrap();
    s.put(&sess, b"q", b"shallow").unwrap();
    let got: Vec<(Vec<u8>, Vec<u8>)> = s.iter(&sess).collect();
    assert_eq!(
        got,
        vec![
            (b"q".to_vec(), b"shallow".to_vec()),
            (long.clone(), b"deep".to_vec()),
        ]
    );
}

#[test]
fn scan_spanning_many_leaves_with_removals() {
    let (_a, s, sess) = store();
    for i in 0..600u64 {
        s.put_u64(&sess, &i.to_be_bytes(), i);
    }
    // Punch holes (including whole-leaf ranges).
    for i in 100..250u64 {
        assert!(s.remove(&sess, &i.to_be_bytes()));
    }
    let mut got = Vec::new();
    s.scan(&sess, &90u64.to_be_bytes(), 20, &mut |_, v| {
        got.push(val_of(v))
    });
    let expect: Vec<u64> = (90..100).chain(250..260).collect();
    assert_eq!(
        got, expect,
        "scan must skip removed ranges and empty leaves"
    );
}

// ---------------------------------------------------------------------
// The iterator form
// ---------------------------------------------------------------------

#[test]
fn range_bounds_cover_all_four_shapes() {
    let (_a, s, sess) = store();
    for i in 0..20u64 {
        s.put_u64(&sess, &i.to_be_bytes(), i);
    }
    let k = |i: u64| i.to_be_bytes();
    let vals = |it: RangeScan<'_>| -> Vec<u64> { it.map(|(_, v)| val_of(&v)).collect() };

    // start..end (half-open)
    assert_eq!(vals(s.range(&sess, &k(5)[..]..&k(9)[..])), vec![5, 6, 7, 8]);
    // start..=end (inclusive)
    assert_eq!(
        vals(s.range(&sess, &k(5)[..]..=&k(9)[..])),
        vec![5, 6, 7, 8, 9]
    );
    // ..end (from the start)
    assert_eq!(vals(s.range(&sess, ..&k(3)[..])), vec![0, 1, 2]);
    // start.. (to the end)
    assert_eq!(vals(s.range(&sess, &k(17)[..]..)), vec![17, 18, 19]);
    // full
    assert_eq!(vals(s.iter(&sess)).len(), 20);
    // empty range
    assert_eq!(
        vals(s.range(&sess, &k(9)[..]..&k(5)[..])),
        Vec::<u64>::new()
    );
}

#[test]
fn range_spans_many_refill_batches() {
    // More keys than one internal batch: the iterator must stitch batches
    // without gaps or duplicates.
    let (_a, s, sess) = store();
    for i in 0..1000u64 {
        s.put_u64(&sess, &i.to_be_bytes(), i);
    }
    let got: Vec<u64> = s
        .range(&sess, &100u64.to_be_bytes()[..]..&900u64.to_be_bytes()[..])
        .map(|(_, v)| val_of(&v))
        .collect();
    let expect: Vec<u64> = (100..900).collect();
    assert_eq!(got, expect);
}

#[test]
fn range_excluded_start_and_prefix_keys() {
    let (_a, s, sess) = store();
    for key in [&b"app"[..], b"apple", b"apple-pie", b"banana"] {
        s.put(&sess, key, key).unwrap();
    }
    // An Excluded start on an existing key skips exactly that key (the
    // next key up may be its extension).
    use std::ops::Bound;
    let got: Vec<Vec<u8>> = s
        .range::<&[u8], _>(&sess, (Bound::Excluded(&b"apple"[..]), Bound::Unbounded))
        .map(|(key, _)| key)
        .collect();
    assert_eq!(got, vec![b"apple-pie".to_vec(), b"banana".to_vec()]);
}

#[test]
fn range_sees_checkpointed_state_after_crash() {
    let (arena, s, sess) = store();
    for i in 0..50u64 {
        s.put_u64(&sess, &i.to_be_bytes(), i);
    }
    s.checkpoint();
    for i in 50..80u64 {
        s.put_u64(&sess, &i.to_be_bytes(), i); // doomed
    }
    drop(sess);
    drop(s);
    arena.crash_seeded(77);
    let (s, _) = Store::open(
        &arena,
        Options::new().threads(1).log_bytes_per_thread(1 << 20),
    )
    .unwrap();
    let sess = s.session().unwrap();
    assert_eq!(s.iter(&sess).count(), 50);
}

#[test]
fn scan_immediately_after_recovery_forces_lazy_repairs() {
    let (arena, s, sess) = store();
    for i in 0..300u64 {
        s.put_u64(&sess, &i.to_be_bytes(), i);
    }
    s.checkpoint();
    for i in 0..300u64 {
        s.put_u64(&sess, &i.to_be_bytes(), 0xDEAD);
    }
    drop(sess);
    drop(s);
    arena.crash_seeded(55);
    let (s2, _) = Store::open(
        &arena,
        Options::new().threads(1).log_bytes_per_thread(1 << 20),
    )
    .unwrap();
    let sess = s2.session().unwrap();
    // The very first operation is a full scan: every leaf recovers lazily
    // under the scan's feet.
    let got: Vec<(u64, u64)> = s2
        .iter(&sess)
        .map(|(k, v)| {
            (
                u64::from_be_bytes(k.as_slice().try_into().unwrap()),
                val_of(&v),
            )
        })
        .collect();
    let expect: Vec<(u64, u64)> = (0..300).map(|i| (i, i)).collect();
    assert_eq!(got, expect);
    assert!(arena.stats().nodes_lazy_recovered() > 0);
}

// ---------------------------------------------------------------------
// Merged scans across shard boundaries
// ---------------------------------------------------------------------

#[test]
fn reverse_ordered_inserts_scan_globally_sorted_at_every_shard_count() {
    for shards in SHARD_COUNTS {
        let (_a, s, sess) = store_with(shards);
        assert_eq!(s.shard_count(), shards);
        // Insert in strictly descending order so no shard receives its
        // keys pre-sorted relative to the others' interleaving.
        for i in (0..500u64).rev() {
            s.put_u64(&sess, &i.to_be_bytes(), i);
        }
        let got: Vec<u64> = s
            .iter(&sess)
            .map(|(k, _)| u64::from_be_bytes(k.as_slice().try_into().unwrap()))
            .collect();
        let expect: Vec<u64> = (0..500).collect();
        assert_eq!(got, expect, "shards={shards}");
        // The callback form agrees, including mid-stream starts + limits.
        let mut vals = Vec::new();
        s.scan(&sess, &123u64.to_be_bytes(), 7, &mut |_, v| {
            vals.push(u64::from_le_bytes(v[..8].try_into().unwrap()))
        });
        assert_eq!(vals, (123..130).collect::<Vec<u64>>(), "shards={shards}");
    }
}

#[test]
fn empty_and_singleton_shards_do_not_disturb_the_merge() {
    // 8 shards, 3 keys: most shards are empty, and the merge must neither
    // stall on them nor invent entries.
    let (_a, s, sess) = store_with(8);
    let keys: [&[u8]; 3] = [b"alpha", b"mid", b"zed"];
    for k in keys {
        s.put(&sess, k, k).unwrap();
    }
    let got: Vec<Vec<u8>> = s.iter(&sess).map(|(k, _)| k).collect();
    assert_eq!(
        got,
        vec![b"alpha".to_vec(), b"mid".to_vec(), b"zed".to_vec()]
    );
    let mut hits = 0;
    assert_eq!(s.scan(&sess, b"aa", usize::MAX, &mut |_, _| hits += 1), 3);
    assert_eq!(hits, 3);
    assert_eq!(s.scan(&sess, b"zz", 10, &mut |_, _| panic!("past end")), 0);
}

#[test]
fn range_confined_to_a_single_shard_hit() {
    // Keys chosen so a whole contiguous key range lives on one shard:
    // the merge must drain that one cursor and ignore the rest.
    let (_a, s, sess) = store_with(8);
    // Find 6 keys routing to shard 0 and give them a common prefix region.
    let mut on_shard0 = Vec::new();
    let mut elsewhere = Vec::new();
    for i in 0..4000u64 {
        let key = format!("key-{i:06}").into_bytes();
        if s.shard_of(&key) == 0 && on_shard0.len() < 6 {
            on_shard0.push(key);
        } else if elsewhere.len() < 50 {
            elsewhere.push(key);
        }
    }
    assert_eq!(on_shard0.len(), 6, "4000 candidates must yield 6 hits");
    for k in on_shard0.iter().chain(&elsewhere) {
        s.put(&sess, k, k).unwrap();
    }
    // A range holding exactly one shard-0 key.
    let target = &on_shard0[2];
    let got: Vec<Vec<u8>> = s
        .range(&sess, target.as_slice()..=target.as_slice())
        .map(|(k, _)| k)
        .collect();
    assert_eq!(got, vec![target.clone()]);
}

#[test]
fn bound_exclusive_edges_hold_at_every_shard_count() {
    use std::ops::Bound;
    for shards in SHARD_COUNTS {
        let (_a, s, sess) = store_with(shards);
        for i in 0..40u64 {
            s.put_u64(&sess, &i.to_be_bytes(), i);
        }
        let k = |i: u64| i.to_be_bytes();
        let vals = |it: RangeScan<'_>| -> Vec<u64> {
            it.map(|(key, _)| u64::from_be_bytes(key.as_slice().try_into().unwrap()))
                .collect()
        };
        // Excluded start, excluded end.
        let got = vals(s.range::<&[u8], _>(
            &sess,
            (Bound::Excluded(&k(10)[..]), Bound::Excluded(&k(14)[..])),
        ));
        assert_eq!(got, vec![11, 12, 13], "shards={shards}");
        // Excluded start == last key -> empty.
        let got = vals(s.range::<&[u8], _>(&sess, (Bound::Excluded(&k(39)[..]), Bound::Unbounded)));
        assert_eq!(got, Vec::<u64>::new(), "shards={shards}");
        // Inverted exclusive range -> empty, at any shard count.
        let got = vals(s.range(&sess, &k(20)[..]..&k(10)[..]));
        assert_eq!(got, Vec::<u64>::new(), "shards={shards}");
        // Half-open range straddling everything.
        let got = vals(s.range(&sess, &k(38)[..]..&k(40)[..]));
        assert_eq!(got, vec![38, 39], "shards={shards}");
    }
}

#[test]
fn merged_range_spans_many_refill_batches_on_sharded_stores() {
    // More keys than one per-shard batch (64): cursors re-arm mid-merge.
    for shards in [2usize, 8] {
        let (_a, s, sess) = store_with(shards);
        for i in 0..1500u64 {
            s.put_u64(&sess, &i.to_be_bytes(), i);
        }
        let got: Vec<u64> = s
            .range(&sess, &100u64.to_be_bytes()[..]..&1400u64.to_be_bytes()[..])
            .map(|(_, v)| val_of(&v))
            .collect();
        let expect: Vec<u64> = (100..1400).collect();
        assert_eq!(got, expect, "shards={shards}");
    }
}

#[test]
fn sharded_scan_sees_checkpointed_state_after_crash() {
    for shards in SHARD_COUNTS {
        let (arena, s, sess) = store_with(shards);
        for i in 0..120u64 {
            s.put_u64(&sess, &i.to_be_bytes(), i);
        }
        s.checkpoint();
        for i in 120..200u64 {
            s.put_u64(&sess, &i.to_be_bytes(), i); // doomed, lands on all shards
        }
        drop(sess);
        drop(s);
        arena.crash_seeded(2000 + shards as u64);
        let (s, _) = Store::open(
            &arena,
            Options::new()
                .threads(1)
                .log_bytes_per_thread(1 << 20)
                .shards(shards),
        )
        .unwrap();
        let sess = s.session().unwrap();
        let got: Vec<u64> = s
            .iter(&sess)
            .map(|(k, _)| u64::from_be_bytes(k.as_slice().try_into().unwrap()))
            .collect();
        assert_eq!(got, (0..120).collect::<Vec<u64>>(), "shards={shards}");
    }
}

// ---------------------------------------------------------------------
// Write batches committing between refills
// ---------------------------------------------------------------------

/// Base data for the refill-atomicity cases: 200 `a-` keys plus 6 `x-del-`
/// victims, spread over 2 shards, so a paused merge holds per-shard
/// buffers strictly inside the `a-` range.
fn refill_fixture() -> (PArena, Store, Session) {
    let (arena, s, sess) = store_with(2);
    for i in 0..200u64 {
        s.put(&sess, format!("a-{i:04}").as_bytes(), &i.to_le_bytes())
            .unwrap();
    }
    for i in 0..6u64 {
        s.put(&sess, format!("x-del-{i}").as_bytes(), b"victim")
            .unwrap();
    }
    (arena, s, sess)
}

#[test]
fn batch_committed_between_refills_lands_atomically_in_the_scan() {
    // A cross-shard batch committing while a range scan is paused between
    // refills must be observed all-or-nothing by every later refill: all
    // of its not-yet-buffered effects appear, never a prefix.
    let (_a, s, sess) = refill_fixture();
    let mut it = s.iter(&sess);
    // Drain past one internal refill (64) but keep every shard cursor
    // alive and buffered well inside the `a-` range.
    let mut seen: Vec<Vec<u8>> = Vec::new();
    for _ in 0..74 {
        seen.push(it.next().expect("200+ keys remain").0);
    }

    let mut batch = sess.batch();
    for i in 0..8u64 {
        batch
            .put(format!("x-new-{i}").as_bytes(), &i.to_le_bytes())
            .unwrap();
    }
    for i in 0..6u64 {
        batch.delete(format!("x-del-{i}").as_bytes()).unwrap();
    }
    batch.put(b"a-0190", b"updated").unwrap();
    assert!(
        batch.commit().unwrap() > 0,
        "the fixture batch must be cross-shard"
    );

    let rest: Vec<(Vec<u8>, Vec<u8>)> = it.collect();
    let keys: Vec<&[u8]> = rest.iter().map(|(k, _)| k.as_slice()).collect();
    // No tearing: every batch put is present, every batch delete absent.
    for i in 0..8u64 {
        let k = format!("x-new-{i}").into_bytes();
        assert!(keys.contains(&k.as_slice()), "missing {i}: torn batch");
    }
    assert!(
        !keys.iter().any(|k| k.starts_with(b"x-del-")),
        "a deleted victim survived: torn batch"
    );
    assert_eq!(
        rest.iter()
            .find(|(k, _)| k == b"a-0190")
            .map(|(_, v)| v.as_slice()),
        Some(&b"updated"[..]),
        "an ahead-of-cursor overwrite must surface at the next refill"
    );
    // The stitched stream stays sorted and duplicate-free.
    let mut all = seen;
    all.extend(rest.iter().map(|(k, _)| k.clone()));
    let mut sorted = all.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(all, sorted, "refill stitching reordered or duplicated keys");
}

#[test]
fn staged_batch_never_leaks_into_a_scan() {
    // Intents without a commit record are staged media, not data: a scan
    // paused across the staging must see none of it.
    let (_a, s, sess) = refill_fixture();
    let mut it = s.iter(&sess);
    for _ in 0..74 {
        it.next().expect("200+ keys remain");
    }
    let mut batch = sess.batch();
    for i in 0..8u64 {
        batch
            .put(format!("x-new-{i}").as_bytes(), &i.to_le_bytes())
            .unwrap();
    }
    batch.delete(b"x-del-0").unwrap();
    assert!(batch.stage_without_commit().unwrap() > 0);

    let rest: Vec<Vec<u8>> = it.map(|(k, _)| k).collect();
    assert!(
        !rest.iter().any(|k| k.starts_with(b"x-new-")),
        "staged puts leaked into the scan"
    );
    assert_eq!(
        rest.iter().filter(|k| k.starts_with(b"x-del-")).count(),
        6,
        "a staged delete took effect"
    );
}

#[test]
fn transient_tree_scan_edges_match() {
    // The same edge semantics hold for the MT baseline.
    let arena = PArena::builder().capacity_bytes(1 << 20).build().unwrap();
    let mgr = EpochManager::new(arena, EpochOptions::transient());
    let t = Masstree::new(mgr, TransientAlloc::new(AllocMode::Global, 1, None));
    let ctx = t.bench_ctx(0);
    let mut hits = 0;
    assert_eq!(t.scan(&ctx, b"", 10, &mut |_, _| hits += 1), 0);
    for i in (0..40u64).step_by(4) {
        t.put(&ctx, &i.to_be_bytes(), i);
    }
    let mut got = Vec::new();
    t.scan(&ctx, &5u64.to_be_bytes(), 2, &mut |_, v| got.push(v));
    assert_eq!(got, vec![8, 12]);
}
