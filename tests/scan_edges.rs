//! Scan edge cases on the durable tree: empty trees, boundary starts,
//! layer crossings, limits, and scans racing recovery.

use incll_repro::prelude::*;

fn tree() -> (PArena, DurableMasstree) {
    let arena = PArena::builder()
        .capacity_bytes(32 << 20)
        .tracked(true)
        .build()
        .unwrap();
    superblock::format(&arena);
    let t = DurableMasstree::create(
        &arena,
        DurableConfig {
            threads: 1,
            log_bytes_per_thread: 1 << 20,
            incll_enabled: true,
        },
    )
    .unwrap();
    (arena, t)
}

#[test]
fn scan_of_empty_tree_returns_nothing() {
    let (_a, t) = tree();
    let ctx = t.thread_ctx(0);
    let mut hits = 0;
    assert_eq!(t.scan(&ctx, b"", 10, &mut |_, _| hits += 1), 0);
    assert_eq!(t.scan(&ctx, b"zzz", usize::MAX, &mut |_, _| hits += 1), 0);
    assert_eq!(hits, 0);
}

#[test]
fn scan_limit_zero_is_a_noop() {
    let (_a, t) = tree();
    let ctx = t.thread_ctx(0);
    t.put(&ctx, b"a", 1);
    assert_eq!(t.scan(&ctx, b"", 0, &mut |_, _| panic!("no visits")), 0);
}

#[test]
fn scan_start_past_last_key() {
    let (_a, t) = tree();
    let ctx = t.thread_ctx(0);
    for i in 0..50u64 {
        t.put(&ctx, &i.to_be_bytes(), i);
    }
    let mut hits = 0;
    t.scan(&ctx, &100u64.to_be_bytes(), 10, &mut |_, _| hits += 1);
    assert_eq!(hits, 0);
}

#[test]
fn scan_start_exactly_on_a_key_is_inclusive() {
    let (_a, t) = tree();
    let ctx = t.thread_ctx(0);
    for i in 0..20u64 {
        t.put(&ctx, &i.to_be_bytes(), i);
    }
    let mut got = Vec::new();
    t.scan(&ctx, &7u64.to_be_bytes(), 3, &mut |_, v| got.push(v));
    assert_eq!(got, vec![7, 8, 9]);
}

#[test]
fn scan_start_between_keys_rounds_up() {
    let (_a, t) = tree();
    let ctx = t.thread_ctx(0);
    for i in (0..40u64).step_by(4) {
        t.put(&ctx, &i.to_be_bytes(), i);
    }
    let mut got = Vec::new();
    t.scan(&ctx, &5u64.to_be_bytes(), 2, &mut |_, v| got.push(v));
    assert_eq!(got, vec![8, 12]);
}

#[test]
fn scan_descends_into_layers_at_the_start_key() {
    let (_a, t) = tree();
    let ctx = t.thread_ctx(0);
    // One slice prefix with several suffixes → a sub-layer.
    for suffix in ["", "-a", "-b", "-c"] {
        t.put(
            &ctx,
            format!("prefix01{suffix}").as_bytes(),
            suffix.len() as u64,
        );
    }
    t.put(&ctx, b"prefix02", 99);
    // Start *inside* the layer: must pick up -b, -c, then the next slice.
    let mut got = Vec::new();
    t.scan(&ctx, b"prefix01-b", 10, &mut |k, _| {
        got.push(String::from_utf8_lossy(k).into_owned())
    });
    assert_eq!(got, vec!["prefix01-b", "prefix01-c", "prefix02"]);
}

#[test]
fn scan_emits_full_keys_across_layers() {
    let (_a, t) = tree();
    let ctx = t.thread_ctx(0);
    let long = vec![b'q'; 30];
    t.put(&ctx, &long, 1);
    t.put(&ctx, b"q", 2);
    let mut got = Vec::new();
    t.scan(&ctx, b"", 10, &mut |k, v| got.push((k.to_vec(), v)));
    assert_eq!(got, vec![(b"q".to_vec(), 2), (long.clone(), 1)]);
}

#[test]
fn scan_spanning_many_leaves_with_removals() {
    let (_a, t) = tree();
    let ctx = t.thread_ctx(0);
    for i in 0..600u64 {
        t.put(&ctx, &i.to_be_bytes(), i);
    }
    // Punch holes (including whole-leaf ranges).
    for i in 100..250u64 {
        assert!(t.remove(&ctx, &i.to_be_bytes()));
    }
    let mut got = Vec::new();
    t.scan(&ctx, &90u64.to_be_bytes(), 20, &mut |_, v| got.push(v));
    let expect: Vec<u64> = (90..100).chain(250..260).collect();
    assert_eq!(
        got, expect,
        "scan must skip removed ranges and empty leaves"
    );
}

#[test]
fn scan_immediately_after_recovery_forces_lazy_repairs() {
    let (arena, t) = tree();
    {
        let ctx = t.thread_ctx(0);
        for i in 0..300u64 {
            t.put(&ctx, &i.to_be_bytes(), i);
        }
        t.epoch_manager().advance();
        for i in 0..300u64 {
            t.put(&ctx, &i.to_be_bytes(), 0xDEAD);
        }
    }
    drop(t);
    arena.crash_seeded(55);
    let (t2, _) = DurableMasstree::open(
        &arena,
        DurableConfig {
            threads: 1,
            log_bytes_per_thread: 1 << 20,
            incll_enabled: true,
        },
    )
    .unwrap();
    let ctx = t2.thread_ctx(0);
    // The very first operation is a full scan: every leaf recovers lazily
    // under the scan's feet.
    let mut got = Vec::new();
    t2.scan(&ctx, b"", usize::MAX, &mut |k, v| {
        got.push((u64::from_be_bytes(k.try_into().unwrap()), v))
    });
    let expect: Vec<(u64, u64)> = (0..300).map(|i| (i, i)).collect();
    assert_eq!(got, expect);
    assert!(arena.stats().nodes_lazy_recovered() > 0);
}

#[test]
fn transient_tree_scan_edges_match() {
    // The same edge semantics hold for the MT baseline.
    let arena = PArena::builder().capacity_bytes(1 << 20).build().unwrap();
    let mgr = EpochManager::new(arena, EpochOptions::transient());
    let t = Masstree::new(mgr, TransientAlloc::new(AllocMode::Global, 1, None));
    let ctx = t.thread_ctx(0);
    let mut hits = 0;
    assert_eq!(t.scan(&ctx, b"", 10, &mut |_, _| hits += 1), 0);
    for i in (0..40u64).step_by(4) {
        t.put(&ctx, &i.to_be_bytes(), i);
    }
    let mut got = Vec::new();
    t.scan(&ctx, &5u64.to_be_bytes(), 2, &mut |_, v| got.push(v));
    assert_eq!(got, vec![8, 12]);
}
