//! Recovery-protocol semantics across crates, via the `Store` facade:
//! unified-open behavior, reports, failed-epoch accumulation, and
//! allocator/tree agreement after restarts.

use incll_repro::prelude::*;

fn options() -> Options {
    Options::new().threads(2).log_bytes_per_thread(1 << 20)
}

fn tracked() -> PArena {
    PArena::builder()
        .capacity_bytes(64 << 20)
        .tracked(true)
        .build()
        .unwrap()
}

#[test]
fn open_formats_creates_then_recovers() {
    // The unified lifecycle: blank arena -> format + create; existing
    // store -> recover — same call, distinguished by the report.
    let arena = tracked();
    let (store, r1) = Store::open(&arena, options()).unwrap();
    assert!(r1.created);
    assert_eq!(r1.failed_epoch, 0);
    assert_eq!(r1.replayed_entries, 0);
    {
        let sess = store.session().unwrap();
        store.put(&sess, b"k", b"v").unwrap();
        store.checkpoint();
    }
    drop(store);
    let (store, r2) = Store::open(&arena, options()).unwrap();
    assert!(!r2.created, "second open must recover, not re-create");
    let sess = store.session().unwrap();
    assert_eq!(store.get(&sess, b"k").as_deref(), Some(&b"v"[..]));
}

#[test]
fn session_pool_is_bounded_and_raii() {
    let arena = tracked();
    let (store, _) = Store::open(&arena, options()).unwrap();
    let s0 = store.session().unwrap();
    let s1 = store.session().unwrap();
    assert_ne!(s0.tid(), s1.tid());
    // Pool of 2 exhausted: the third acquisition reports, not corrupts.
    match store.session() {
        Err(Error::TooManyThreads { limit }) => assert_eq!(limit, 2),
        other => panic!("expected TooManyThreads, got {other:?}"),
    }
    // RAII: dropping a session frees its slot for reuse.
    let freed = s0.tid();
    drop(s0);
    let s2 = store.session().unwrap();
    assert_eq!(s2.tid(), freed);
    drop(s1);
    drop(s2);
    // And the pool refills completely.
    let all: Vec<Session> = (0..2).map(|_| store.session().unwrap()).collect();
    assert_eq!(all.len(), 2);
}

#[test]
fn oversized_values_error_cleanly() {
    let arena = tracked();
    let (store, _) = Store::open(&arena, options()).unwrap();
    let sess = store.session().unwrap();
    store.put(&sess, b"k", &vec![1u8; MAX_VALUE_BYTES]).unwrap();
    match store.put(&sess, b"k", &vec![2u8; MAX_VALUE_BYTES + 1]) {
        Err(Error::ValueTooLarge { size, max }) => {
            assert_eq!(size, MAX_VALUE_BYTES + 1);
            assert_eq!(max, MAX_VALUE_BYTES);
        }
        other => panic!("expected ValueTooLarge, got {other:?}"),
    }
    // The store is untouched by the failed put.
    assert_eq!(
        store.get(&sess, b"k").map(|v| v.len()),
        Some(MAX_VALUE_BYTES)
    );
}

#[test]
fn recovery_report_counts_replayed_entries() {
    let arena = tracked();
    let (store, _) = Store::open(&arena, options()).unwrap();
    {
        let sess = store.session().unwrap();
        for i in 0..50u64 {
            store.put_u64(&sess, &i.to_be_bytes(), i);
        }
        store.checkpoint();
        // Force external logging: remove-then-insert in one epoch.
        for i in 0..20u64 {
            store.remove(&sess, &i.to_be_bytes());
            store.put_u64(&sess, &(100 + i).to_be_bytes(), i);
        }
    }
    let logged = store.arena().stats().ext_nodes_logged();
    assert!(logged > 0, "the hazard path must have logged nodes");
    drop(store);
    arena.crash_seeded(8);
    let (_, report) = Store::open(&arena, options()).unwrap();
    assert!(!report.created);
    assert!(report.replayed_entries > 0);
    assert!(report.replayed_bytes >= report.replayed_entries * 8);
    // Create executes at epoch 2 (mkfs epoch sealed); the checkpoint
    // advances to 3, which the crash then fails.
    assert_eq!(report.failed_epoch, 3);
    assert_eq!(report.failed_epochs, vec![3]);
}

#[test]
fn failed_epochs_accumulate_across_crashes() {
    let arena = tracked();
    let (store, _) = Store::open(&arena, options()).unwrap();
    {
        let sess = store.session().unwrap();
        store.put_u64(&sess, b"x", 1);
        store.checkpoint();
    }
    drop(store);
    for round in 0..5u64 {
        arena.crash_seeded(round);
        let (store, report) = Store::open(&arena, options()).unwrap();
        assert_eq!(report.failed_epochs.len(), round as usize + 1);
        let sess = store.session().unwrap();
        assert_eq!(store.get_u64(&sess, b"x"), Some(1));
        // Doomed mutation each round (never checkpointed).
        store.put_u64(&sess, b"doomed", round);
    }
}

// ---------------------------------------------------------------------
// Shard-aware open: typed errors and per-shard reports
// ---------------------------------------------------------------------

#[test]
fn shard_count_mismatch_is_a_typed_error() {
    let arena = tracked();
    let (store, _) = Store::open(&arena, options().shards(2)).unwrap();
    {
        let sess = store.session().unwrap();
        store.put_u64(&sess, b"k", 7);
        store.checkpoint();
    }
    drop(store);
    match Store::open(&arena, options().shards(4)) {
        Err(Error::ShardMismatch {
            requested,
            on_media,
        }) => {
            assert_eq!((requested, on_media), (4, 2));
        }
        other => panic!("expected ShardMismatch, got {other:?}"),
    }
    // The store is intact and reopens fine with the formatted count.
    let (store, report) = Store::open(&arena, options().shards(2)).unwrap();
    assert!(!report.created);
    let sess = store.session().unwrap();
    assert_eq!(store.get_u64(&sess, b"k"), Some(7));
}

#[test]
fn invalid_shard_counts_are_rejected_before_touching_media() {
    for bad in [0usize, 3, 6, 65, 128] {
        let arena = tracked();
        match Store::open(&arena, options().shards(bad)) {
            Err(Error::InvalidShardCount { requested, .. }) => assert_eq!(requested, bad),
            other => panic!("shards({bad}): expected InvalidShardCount, got {other:?}"),
        }
        // The blank arena must still be blank — the rejected open may not
        // have formatted it on the way to the error.
        assert!(
            !incll_pmem::superblock::has_magic(&arena),
            "shards({bad}): rejected open must not format the arena"
        );
    }
}

#[test]
fn pre_shard_layout_is_a_typed_error_not_a_reformat() {
    use incll_pmem::superblock;
    let arena = tracked();
    let (store, _) = Store::open(&arena, options()).unwrap();
    {
        let sess = store.session().unwrap();
        store.put_u64(&sess, b"precious", 1);
        store.checkpoint();
    }
    drop(store);
    // Rewind the version word to the pre-shard layout generation.
    arena.pwrite_u64(superblock::SB_VERSION, 1);
    match Store::open(&arena, options()) {
        Err(Error::UnsupportedLayout { found, expected }) => {
            assert_eq!(found, 1);
            assert_eq!(expected, superblock::VERSION);
        }
        other => panic!("expected UnsupportedLayout, got {other:?}"),
    }
    // Crucially, the refused open must not have wiped anything: restoring
    // the version word brings the data back.
    arena.pwrite_u64(superblock::SB_VERSION, superblock::VERSION);
    let (store, _) = Store::open(&arena, options()).unwrap();
    let sess = store.session().unwrap();
    assert_eq!(store.get_u64(&sess, b"precious"), Some(1));
}

#[test]
fn v1_through_v5_media_fail_typed_without_reformat() {
    use incll_pmem::superblock;
    // Fabricate pre-v6 superblocks: magic + stale version + plausible
    // field debris (v3 media is a real shape: per-shard epoch domains but
    // one shared carve frontier and no watermark table; v5 has per-shard
    // static regions but no extent-owner table). The v6 opener must
    // return UnsupportedLayout and leave every byte alone — never
    // "helpfully" reformat over user data.
    for stale_version in [1u64, 2, 3, 4, 5] {
        let arena = tracked();
        arena.pwrite_u64(superblock::SB_MAGIC, superblock::MAGIC);
        arena.pwrite_u64(superblock::SB_VERSION, stale_version);
        arena.pwrite_u64(superblock::SB_CUR_EPOCH, 9);
        arena.pwrite_u64(superblock::SB_TREE_META, 1);
        arena.pwrite_u64(superblock::SB_SHARD_COUNT, 2);
        let before: Vec<u64> = (0..64u64).map(|i| arena.pread_u64(i * 8 + 64)).collect();
        match Store::open(&arena, options()) {
            Err(Error::UnsupportedLayout { found, expected }) => {
                assert_eq!(found, stale_version);
                assert_eq!(expected, superblock::VERSION);
            }
            other => panic!("v{stale_version}: expected UnsupportedLayout, got {other:?}"),
        }
        let after: Vec<u64> = (0..64u64).map(|i| arena.pread_u64(i * 8 + 64)).collect();
        assert_eq!(
            before, after,
            "v{stale_version}: refused open must not write"
        );
    }
}

#[test]
fn truncated_or_garbage_shard_table_still_fails_typed() {
    use incll_pmem::superblock;
    // v2 media whose shard table region is garbage (a torn migration, a
    // truncated copy): version screening must reject it before any code
    // path interprets the table.
    let arena = tracked();
    arena.pwrite_u64(superblock::SB_MAGIC, superblock::MAGIC);
    arena.pwrite_u64(superblock::SB_VERSION, 2);
    arena.pwrite_u64(superblock::SB_TREE_META, 1);
    arena.pwrite_u64(superblock::SB_SHARD_COUNT, 999); // absurd count
    for i in 0..32u64 {
        // Garbage holder cells across the v2 shard-table region.
        arena.pwrite_u64(superblock::SB_SHARD_TABLE + i * 8, 0xDEAD_BEEF ^ i);
    }
    match Store::open(&arena, options()) {
        Err(Error::UnsupportedLayout { found, .. }) => assert_eq!(found, 2),
        other => panic!("expected UnsupportedLayout, got {other:?}"),
    }
    // The garbage is untouched (no repair attempts on foreign layouts).
    for i in 0..32u64 {
        assert_eq!(
            arena.pread_u64(superblock::SB_SHARD_TABLE + i * 8),
            0xDEAD_BEEF ^ i
        );
    }
}

#[test]
fn failed_epoch_set_compacts_at_checkpoints() {
    use incll_pmem::superblock;
    // Regression for unbounded failed-epoch growth: more crash/recover
    // rounds than MAX_FAILED_EPOCHS (119) used to end in
    // FailedEpochSetFull, because entries were never pruned. Now each
    // completed checkpoint sweeps the trees + allocator lists and compacts
    // every entry older than itself, so the set stays tiny forever.
    let arena = tracked();
    {
        let (store, _) = Store::open(&arena, options()).unwrap();
        let sess = store.session().unwrap();
        for i in 0..40u64 {
            store.put_u64(&sess, &i.to_be_bytes(), i);
        }
        store.checkpoint();
    }
    for round in 0..(incll_pmem::superblock::MAX_FAILED_EPOCHS as u64 + 20) {
        arena.crash_seeded(round * 7 + 1);
        let (store, report) = Store::open(&arena, options())
            .unwrap_or_else(|e| panic!("round {round}: open failed with {e}"));
        assert!(
            report.failed_epochs.len() <= 3,
            "round {round}: set must stay compacted, got {:?}",
            report.failed_epochs
        );
        let sess = store.session().unwrap();
        // Doomed churn so every round has rollback work, then a committed
        // checkpoint whose advance compacts the set.
        store.put_u64(&sess, &(round % 40).to_be_bytes(), 9999);
        store.checkpoint();
        assert!(
            superblock::failed_epochs(&arena).is_empty(),
            "round {round}: the completed checkpoint must prune the set"
        );
        store.put_u64(&sess, b"doomed-tail", round); // dies with the crash
    }
    // Data is still exactly the per-round committed state.
    let (store, _) = Store::open(&arena, options()).unwrap();
    let sess = store.session().unwrap();
    assert_eq!(store.get_u64(&sess, b"doomed-tail"), None);
    let mut n = 0;
    store.scan(&sess, b"", usize::MAX, &mut |_, _| n += 1);
    assert_eq!(n, 40);
}

#[test]
fn sharded_failed_sets_compact_independently() {
    use incll_pmem::superblock;
    // A hot shard checkpointing on its own cadence compacts its own set
    // while a never-advancing shard keeps accumulating — bounded only by
    // its (now-pruneable) capacity.
    let arena = tracked();
    let opts = options().shards(2);
    // Find one key per shard.
    let (store, _) = Store::open(&arena, opts.clone()).unwrap();
    let key_for = |shard: usize| {
        (0u64..)
            .map(|i| i.to_be_bytes())
            .find(|k| store.shard_of(k) == shard)
            .unwrap()
    };
    let (k0, k1) = (key_for(0), key_for(1));
    {
        let sess = store.session().unwrap();
        store.put_u64(&sess, &k0, 1);
        store.put_u64(&sess, &k1, 1);
        store.checkpoint();
    }
    drop(store);
    // Stay inside shard 1's capacity: a shard that *never* completes a
    // checkpoint is still bounded by its set size — compaction needs a
    // completed boundary to anchor to.
    let rounds = superblock::MAX_FAILED_EPOCHS_SHARD as u64 - 2;
    for round in 0..rounds {
        arena.crash_seeded(round + 900);
        let (store, _) = Store::open(&arena, opts.clone()).unwrap();
        let sess = store.session().unwrap();
        // Shard 0 commits work and checkpoints (compacting its set);
        // shard 1 only ever does doomed work, so its set keeps growing.
        store.put_u64(&sess, &k0, round);
        store.checkpoint_shard(0);
        assert!(superblock::failed_epochs_for(&arena, 0).is_empty());
        assert_eq!(
            superblock::failed_epochs_for(&arena, 1).len(),
            round as usize + 1,
            "shard 1 has never checkpointed: its set must accumulate"
        );
        store.put_u64(&sess, &k1, round); // doomed every round
    }
    // Shard 1 finally checkpoints: its set compacts too, unblocking
    // unlimited further crashes, and both shards carry their own
    // boundaries' data.
    arena.crash_seeded(990);
    let (store, report) = Store::open(&arena, opts.clone()).unwrap();
    assert!(report.per_shard[1].failed_epoch > 1);
    {
        let sess = store.session().unwrap();
        assert_eq!(store.get_u64(&sess, &k1), Some(1), "shard 1 rolls back");
        assert_eq!(store.get_u64(&sess, &k0), Some(rounds - 1));
        store.checkpoint_shard(1);
    }
    assert!(superblock::failed_epochs_for(&arena, 1).is_empty());
    drop(store);
    // And the compacted shard survives many more crash rounds.
    for round in 0..5u64 {
        arena.crash_seeded(round + 2000);
        let (store, _) = Store::open(&arena, opts.clone()).unwrap();
        let sess = store.session().unwrap();
        store.put_u64(&sess, &k1, 100 + round);
        store.checkpoint_shard(1);
        assert!(superblock::failed_epochs_for(&arena, 1).is_empty());
    }
}

#[test]
fn recovery_report_aggregates_per_shard_counts() {
    let arena = tracked();
    let opts = options().shards(4);
    let (store, _) = Store::open(&arena, opts.clone()).unwrap();
    {
        let sess = store.session().unwrap();
        for i in 0..80u64 {
            store.put_u64(&sess, &i.to_be_bytes(), i);
        }
        store.checkpoint();
        // Force external logging on every shard: remove-then-insert in
        // one epoch is the InCLLp hazard path.
        for i in 0..80u64 {
            store.remove(&sess, &i.to_be_bytes());
            store.put_u64(&sess, &(1000 + i).to_be_bytes(), i);
        }
    }
    drop(store);
    arena.crash_seeded(44);
    let (_, report) = Store::open(&arena, opts).unwrap();
    assert_eq!(report.per_shard.len(), 4);
    for (i, s) in report.per_shard.iter().enumerate() {
        assert_eq!(s.shard, i);
    }
    assert_eq!(
        report
            .per_shard
            .iter()
            .map(|s| s.replayed_entries)
            .sum::<u64>(),
        report.replayed_entries
    );
    assert_eq!(
        report
            .per_shard
            .iter()
            .map(|s| s.replayed_bytes)
            .sum::<u64>(),
        report.replayed_bytes
    );
    assert!(
        report
            .per_shard
            .iter()
            .filter(|s| s.replayed_entries > 0)
            .count()
            >= 2,
        "the hazard churn must have logged on several shards: {:?}",
        report.per_shard
    );
}

#[test]
fn recovery_report_names_workers_and_per_shard_times() {
    let arena = tracked();
    let opts = |workers: usize| options().shards(8).recovery_threads(workers);
    let (store, created) = Store::open(&arena, opts(1)).unwrap();
    assert_eq!(
        created.parallel_workers, 0,
        "a created store recovered nothing; no workers ran"
    );
    {
        let sess = store.session().unwrap();
        for i in 0..60u64 {
            store.put_u64(&sess, &i.to_be_bytes(), i);
        }
        store.checkpoint();
        for i in 0..60u64 {
            store.remove(&sess, &i.to_be_bytes());
            store.put_u64(&sess, &(500 + i).to_be_bytes(), i);
        }
    }
    drop(store);
    arena.crash_seeded(51);
    // Asking for more workers than shards clamps to the shard count.
    let (store, report) = Store::open(&arena, opts(16)).unwrap();
    assert_eq!(report.parallel_workers, 8, "clamped to the shard count");
    assert_eq!(report.per_shard.len(), 8);
    for s in &report.per_shard {
        assert_eq!(s.recovered_epoch, s.failed_epoch + 1);
    }
    // Per-shard wall times are recorded inside the workers; the overall
    // eager phase must at least cover the slowest shard's time.
    let max_shard = report
        .per_shard
        .iter()
        .map(|s| s.replay_time)
        .max()
        .unwrap();
    assert!(
        report.replay_time >= max_shard,
        "the eager phase ({:?}) must cover the slowest shard ({max_shard:?})",
        report.replay_time
    );
    drop(store);
    arena.crash_seeded(52);
    // Sequential recovery (explicit, immune to INCLL_RECOVERY_THREADS).
    let (_, report) = Store::open(&arena, opts(1)).unwrap();
    assert_eq!(report.parallel_workers, 1);
}

#[test]
fn exec_epoch_monotonically_grows() {
    let arena = tracked();
    let (store, _) = Store::open(&arena, options()).unwrap();
    store.checkpoint();
    store.checkpoint();
    let before = store.epoch_manager().current_epoch();
    drop(store);
    arena.crash_seeded(1);
    let (store, _) = Store::open(&arena, options()).unwrap();
    assert!(store.epoch_manager().current_epoch() > before);
    assert_eq!(
        store.epoch_manager().exec_epoch(),
        store.epoch_manager().current_epoch()
    );
}

#[test]
fn checkpoint_after_recovery_clears_failed_run() {
    // Once an epoch completes post-recovery, older log debris must never
    // replay again.
    let arena = tracked();
    let (store, _) = Store::open(&arena, options()).unwrap();
    {
        let sess = store.session().unwrap();
        for i in 0..30u64 {
            store.put_u64(&sess, &i.to_be_bytes(), i);
        }
        store.checkpoint();
        for i in 0..30u64 {
            store.put_u64(&sess, &i.to_be_bytes(), 999);
        }
    }
    drop(store);
    arena.crash_seeded(3);
    let (store, r1) = Store::open(&arena, options()).unwrap();
    assert!(r1.replayed_entries > 0 || arena.stats().ext_nodes_logged() == 0);
    {
        let sess = store.session().unwrap();
        for i in 0..30u64 {
            store.put_u64(&sess, &i.to_be_bytes(), 7);
        }
        store.checkpoint(); // completes: resets the log
    }
    drop(store);
    arena.crash_seeded(4);
    let (store, r2) = Store::open(&arena, options()).unwrap();
    assert_eq!(
        r2.replayed_entries, 0,
        "a completed checkpoint must invalidate old entries"
    );
    let sess = store.session().unwrap();
    for i in 0..30u64 {
        assert_eq!(store.get_u64(&sess, &i.to_be_bytes()), Some(7));
    }
}

#[test]
fn allocator_and_tree_agree_after_recovery() {
    // Every value reachable from the store reads back correctly after a
    // crash + recovery + further churn (no use-after-free of buffers) —
    // exercised across size classes via byte values.
    let arena = tracked();
    let bval = |i: u64, tag: u64| -> Vec<u8> {
        let len = ((i * 31 + tag) % 400) as usize;
        (0..len)
            .map(|j| (tag as u8).wrapping_add(j as u8))
            .collect()
    };
    let (store, _) = Store::open(&arena, options()).unwrap();
    {
        let sess = store.session().unwrap();
        for i in 0..300u64 {
            store.put(&sess, &i.to_be_bytes(), &bval(i, 0)).unwrap();
        }
        store.checkpoint();
        for i in 0..300u64 {
            store.put(&sess, &i.to_be_bytes(), &bval(i, 1)).unwrap(); // churn buffers
        }
    }
    drop(store);
    arena.crash_seeded(12);
    let (store, _) = Store::open(&arena, options()).unwrap();
    let sess = store.session().unwrap();
    // Post-recovery churn reuses reverted buffers.
    for i in 0..300u64 {
        assert_eq!(store.get(&sess, &i.to_be_bytes()), Some(bval(i, 0)));
        store.put(&sess, &i.to_be_bytes(), &bval(i, 5)).unwrap();
    }
    store.checkpoint();
    for i in 0..300u64 {
        assert_eq!(store.get(&sess, &i.to_be_bytes()), Some(bval(i, 5)));
    }
}

#[test]
fn clean_restart_cycles_preserve_data() {
    let arena = tracked();
    let mut expected = Vec::new();
    {
        let (store, _) = Store::open(&arena, options()).unwrap();
        let sess = store.session().unwrap();
        for i in 0..100u64 {
            store.put_u64(&sess, &i.to_be_bytes(), i);
            expected.push((i.to_be_bytes().to_vec(), i.to_le_bytes().to_vec()));
        }
        store.checkpoint();
    }
    for cycle in 0..4u64 {
        let (store, _) = Store::open(&arena, options()).unwrap();
        let sess = store.session().unwrap();
        let got: Vec<(Vec<u8>, Vec<u8>)> = store.iter(&sess).collect();
        assert_eq!(got, expected, "cycle {cycle}");
        // Add one key per cycle, checkpoint it.
        let k = (1000 + cycle).to_be_bytes();
        store.put_u64(&sess, &k, cycle);
        expected.push((k.to_vec(), cycle.to_le_bytes().to_vec()));
        expected.sort();
        store.checkpoint();
    }
}

#[test]
fn stats_reflect_recovery_work() {
    let arena = tracked();
    let (store, _) = Store::open(&arena, options()).unwrap();
    {
        let sess = store.session().unwrap();
        for i in 0..100u64 {
            store.put_u64(&sess, &i.to_be_bytes(), i);
        }
        store.checkpoint();
        for i in 0..100u64 {
            store.put_u64(&sess, &i.to_be_bytes(), i * 2);
        }
    }
    drop(store);
    arena.crash_seeded(21);
    let before = arena.stats().snapshot();
    let (store, _) = Store::open(&arena, options()).unwrap();
    let sess = store.session().unwrap();
    let mut n = 0u64;
    store.scan(&sess, b"", usize::MAX, &mut |_, _| n += 1);
    let d = arena.stats().snapshot().delta(&before);
    assert_eq!(n, 100);
    assert!(
        d.nodes_lazy_recovered > 0,
        "the scan must have lazily recovered leaves"
    );
}
