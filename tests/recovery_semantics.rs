//! Recovery-protocol semantics across crates: reports, failed-epoch
//! accumulation, log-capacity behavior, and allocator/tree agreement
//! after restarts.

use incll_repro::prelude::*;

fn config() -> DurableConfig {
    DurableConfig {
        threads: 2,
        log_bytes_per_thread: 1 << 20,
        incll_enabled: true,
    }
}

fn tracked() -> PArena {
    let a = PArena::builder()
        .capacity_bytes(64 << 20)
        .tracked(true)
        .build()
        .unwrap();
    superblock::format(&a);
    a
}

#[test]
fn recovery_report_counts_replayed_entries() {
    let arena = tracked();
    let tree = DurableMasstree::create(&arena, config()).unwrap();
    {
        let ctx = tree.thread_ctx(0);
        for i in 0..50u64 {
            tree.put(&ctx, &i.to_be_bytes(), i);
        }
        tree.epoch_manager().advance();
        // Force external logging: remove-then-insert in one epoch.
        for i in 0..20u64 {
            tree.remove(&ctx, &i.to_be_bytes());
            tree.put(&ctx, &(100 + i).to_be_bytes(), i);
        }
    }
    let logged = arena.stats().ext_nodes_logged();
    assert!(logged > 0, "the hazard path must have logged nodes");
    drop(tree);
    arena.crash_seeded(8);
    let (_, report) = DurableMasstree::open(&arena, config()).unwrap();
    assert!(report.replayed_entries > 0);
    assert!(report.replayed_bytes >= report.replayed_entries * 8);
    assert_eq!(report.failed_epoch, 2);
    assert_eq!(report.failed_epochs, vec![2]);
}

#[test]
fn failed_epochs_accumulate_across_crashes() {
    let arena = tracked();
    let tree = DurableMasstree::create(&arena, config()).unwrap();
    {
        let ctx = tree.thread_ctx(0);
        tree.put(&ctx, b"x", 1);
        tree.epoch_manager().advance();
    }
    drop(tree);
    for round in 0..5u64 {
        arena.crash_seeded(round);
        let (tree, report) = DurableMasstree::open(&arena, config()).unwrap();
        assert_eq!(report.failed_epochs.len(), round as usize + 1);
        let ctx = tree.thread_ctx(0);
        assert_eq!(tree.get(&ctx, b"x"), Some(1));
        // Doomed mutation each round (never checkpointed).
        tree.put(&ctx, b"doomed", round);
    }
}

#[test]
fn exec_epoch_monotonically_grows() {
    let arena = tracked();
    let tree = DurableMasstree::create(&arena, config()).unwrap();
    tree.epoch_manager().advance();
    tree.epoch_manager().advance();
    let before = tree.epoch_manager().current_epoch();
    drop(tree);
    arena.crash_seeded(1);
    let (tree, _) = DurableMasstree::open(&arena, config()).unwrap();
    assert!(tree.epoch_manager().current_epoch() > before);
    assert_eq!(
        tree.epoch_manager().exec_epoch(),
        tree.epoch_manager().current_epoch()
    );
}

#[test]
fn checkpoint_after_recovery_clears_failed_run() {
    // Once an epoch completes post-recovery, older log debris must never
    // replay again.
    let arena = tracked();
    let tree = DurableMasstree::create(&arena, config()).unwrap();
    {
        let ctx = tree.thread_ctx(0);
        for i in 0..30u64 {
            tree.put(&ctx, &i.to_be_bytes(), i);
        }
        tree.epoch_manager().advance();
        for i in 0..30u64 {
            tree.put(&ctx, &i.to_be_bytes(), 999);
        }
    }
    drop(tree);
    arena.crash_seeded(3);
    let (tree, r1) = DurableMasstree::open(&arena, config()).unwrap();
    assert!(r1.replayed_entries > 0 || arena.stats().ext_nodes_logged() == 0);
    {
        let ctx = tree.thread_ctx(0);
        for i in 0..30u64 {
            tree.put(&ctx, &i.to_be_bytes(), 7);
        }
        tree.epoch_manager().advance(); // completes: resets the log
    }
    drop(tree);
    arena.crash_seeded(4);
    let (tree, r2) = DurableMasstree::open(&arena, config()).unwrap();
    assert_eq!(
        r2.replayed_entries, 0,
        "a completed checkpoint must invalidate old entries"
    );
    let ctx = tree.thread_ctx(0);
    for i in 0..30u64 {
        assert_eq!(tree.get(&ctx, &i.to_be_bytes()), Some(7));
    }
}

#[test]
fn allocator_and_tree_agree_after_recovery() {
    // Every value reachable from the tree reads back correctly after a
    // crash + recovery + further churn (no use-after-free of buffers).
    let arena = tracked();
    let tree = DurableMasstree::create(&arena, config()).unwrap();
    {
        let ctx = tree.thread_ctx(0);
        for i in 0..300u64 {
            tree.put(&ctx, &i.to_be_bytes(), i);
        }
        tree.epoch_manager().advance();
        for i in 0..300u64 {
            tree.put(&ctx, &i.to_be_bytes(), i + 1000); // churn buffers
        }
    }
    drop(tree);
    arena.crash_seeded(12);
    let (tree, _) = DurableMasstree::open(&arena, config()).unwrap();
    let ctx = tree.thread_ctx(0);
    // Post-recovery churn reuses reverted buffers.
    for i in 0..300u64 {
        assert_eq!(tree.get(&ctx, &i.to_be_bytes()), Some(i));
        tree.put(&ctx, &i.to_be_bytes(), i + 5000);
    }
    tree.epoch_manager().advance();
    for i in 0..300u64 {
        assert_eq!(tree.get(&ctx, &i.to_be_bytes()), Some(i + 5000));
    }
}

#[test]
fn clean_restart_cycles_preserve_data() {
    let arena = tracked();
    let mut expected = Vec::new();
    {
        let tree = DurableMasstree::create(&arena, config()).unwrap();
        let ctx = tree.thread_ctx(0);
        for i in 0..100u64 {
            tree.put(&ctx, &i.to_be_bytes(), i);
            expected.push((i.to_be_bytes().to_vec(), i));
        }
        tree.epoch_manager().advance();
    }
    for cycle in 0..4u64 {
        let (tree, _) = DurableMasstree::open(&arena, config()).unwrap();
        let ctx = tree.thread_ctx(0);
        let mut got = Vec::new();
        tree.scan(&ctx, b"", usize::MAX, &mut |k, v| got.push((k.to_vec(), v)));
        assert_eq!(got, expected, "cycle {cycle}");
        // Add one key per cycle, checkpoint it.
        let k = (1000 + cycle).to_be_bytes();
        tree.put(&ctx, &k, cycle);
        expected.push((k.to_vec(), cycle));
        expected.sort();
        tree.epoch_manager().advance();
    }
}

#[test]
fn stats_reflect_recovery_work() {
    let arena = tracked();
    let tree = DurableMasstree::create(&arena, config()).unwrap();
    {
        let ctx = tree.thread_ctx(0);
        for i in 0..100u64 {
            tree.put(&ctx, &i.to_be_bytes(), i);
        }
        tree.epoch_manager().advance();
        for i in 0..100u64 {
            tree.put(&ctx, &i.to_be_bytes(), i * 2);
        }
    }
    drop(tree);
    arena.crash_seeded(21);
    let before = arena.stats().snapshot();
    let (tree, _) = DurableMasstree::open(&arena, config()).unwrap();
    let ctx = tree.thread_ctx(0);
    let mut n = 0u64;
    tree.scan(&ctx, b"", usize::MAX, &mut |_, _| n += 1);
    let d = arena.stats().snapshot().delta(&before);
    assert_eq!(n, 100);
    assert!(
        d.nodes_lazy_recovered > 0,
        "the scan must have lazily recovered leaves"
    );
}
