//! Concurrent stress across crates: worker sessions hammer each system
//! while the epoch driver checkpoints at a fast cadence; afterwards the
//! structures must be fully coherent.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use incll_repro::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const WORKERS: usize = 3;
const KEYS: u64 = 3_000;

fn val_of(v: &[u8]) -> u64 {
    u64::from_le_bytes(v[..8].try_into().unwrap())
}

/// Every worker writes values tagged with its session id into its own key
/// slice; afterwards each key holds a value its owner wrote.
fn stress_durable(incll_enabled: bool, shards: usize) {
    let arena = PArena::builder().capacity_bytes(128 << 20).build().unwrap();
    let (store, _) = Store::open(
        &arena,
        Options::new()
            .threads(WORKERS)
            .log_bytes_per_thread(8 << 20)
            .incll(incll_enabled)
            .shards(shards),
    )
    .unwrap();
    let driver = AdvanceDriver::spawn(store.epoch_manager().clone(), Duration::from_millis(4));
    let ops_done = AtomicU64::new(0);
    let stop = AtomicBool::new(false);

    std::thread::scope(|s| {
        for _ in 0..WORKERS {
            let store = store.clone();
            let ops_done = &ops_done;
            let stop = &stop;
            s.spawn(move || {
                let sess = store.session().expect("one slot per worker");
                let tid = sess.tid();
                let mut rng = StdRng::seed_from_u64(tid as u64 + 1);
                let mut local = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // Keys partitioned by tid => deterministic ownership.
                    let k = (rng.gen_range(0..KEYS / WORKERS as u64) * WORKERS as u64 + tid as u64)
                        .to_be_bytes();
                    match rng.gen_range(0..10) {
                        0..=5 => {
                            store.put_u64(&sess, &k, (tid as u64) << 56 | local);
                            local += 1;
                        }
                        6..=7 => {
                            store.remove(&sess, &k);
                        }
                        _ => {
                            if let Some(v) = store.get_u64(&sess, &k) {
                                assert_eq!(
                                    v >> 56,
                                    tid as u64,
                                    "worker {tid} read another worker's value"
                                );
                            }
                        }
                    }
                    ops_done.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        std::thread::sleep(Duration::from_millis(400));
        stop.store(true, Ordering::Relaxed);
    });
    driver.stop();
    assert!(ops_done.load(Ordering::Relaxed) > 1_000);

    // Full-store coherence: iteration is sorted, values belong to owners.
    let sess = store.session().unwrap();
    let mut prev: Option<Vec<u8>> = None;
    for (k, v) in store.iter(&sess) {
        if let Some(p) = &prev {
            assert!(p < &k, "iteration out of order");
        }
        let idx = u64::from_be_bytes(k.as_slice().try_into().unwrap());
        assert_eq!(
            val_of(&v) >> 56,
            idx % WORKERS as u64,
            "value owner mismatch"
        );
        prev = Some(k);
    }
}

#[test]
fn durable_store_concurrent_stress() {
    stress_durable(true, 1);
}

#[test]
fn logging_mode_concurrent_stress() {
    stress_durable(false, 1);
}

#[test]
fn sharded_store_concurrent_stress() {
    // Same ownership/coherence bar with the keyspace hash partitioned:
    // routing must never send two workers' slices to each other, and the
    // full-store iteration at the end is the k-way merge under load.
    stress_durable(true, 8);
}

#[test]
fn session_pool_cycles_under_contention() {
    // Workers repeatedly acquire/release sessions from a pool smaller than
    // the worker count; every acquisition either succeeds with a valid
    // slot or reports exhaustion — never a stale or duplicated slot.
    let arena = PArena::builder().capacity_bytes(64 << 20).build().unwrap();
    let (store, _) = Store::open(
        &arena,
        Options::new().threads(2).log_bytes_per_thread(1 << 20),
    )
    .unwrap();
    let successes = AtomicU64::new(0);
    let exhausted = AtomicU64::new(0);
    std::thread::scope(|s| {
        for w in 0..4 {
            let store = store.clone();
            let successes = &successes;
            let exhausted = &exhausted;
            s.spawn(move || {
                for i in 0..300u64 {
                    match store.session() {
                        Ok(sess) => {
                            assert!(sess.tid() < 2, "slot out of range");
                            store.put_u64(&sess, &(w * 1000 + i).to_be_bytes(), i);
                            successes.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(Error::TooManyThreads { limit }) => {
                            assert_eq!(limit, 2);
                            exhausted.fetch_add(1, Ordering::Relaxed);
                            std::thread::yield_now();
                        }
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                }
            });
        }
    });
    assert!(successes.load(Ordering::Relaxed) > 0);
    // With 4 workers over 2 slots, the pool must have saturated at least
    // occasionally — and recovered every time.
    let sess = store.session().unwrap();
    assert!(store.iter(&sess).count() > 0);
}

#[test]
fn transient_trees_concurrent_stress() {
    for mode in [AllocMode::Global, AllocMode::Pool] {
        let pool = PArena::builder().capacity_bytes(64 << 20).build().unwrap();
        let mgr = EpochManager::new(pool.clone(), EpochOptions::transient());
        let alloc = match mode {
            AllocMode::Global => TransientAlloc::new(mode, WORKERS, None),
            AllocMode::Pool => TransientAlloc::new(mode, WORKERS, Some(pool)),
        };
        let tree = std::sync::Arc::new(Masstree::new(mgr.clone(), alloc));
        let driver = AdvanceDriver::spawn(mgr, Duration::from_millis(4));
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            for tid in 0..WORKERS {
                let tree = tree.clone();
                let stop = &stop;
                s.spawn(move || {
                    let ctx = tree.bench_ctx(tid);
                    let mut rng = StdRng::seed_from_u64(tid as u64);
                    while !stop.load(Ordering::Relaxed) {
                        let k = rng.gen_range(0..KEYS).to_be_bytes();
                        match rng.gen_range(0..4) {
                            0 | 1 => {
                                tree.put(&ctx, &k, rng.gen());
                            }
                            2 => {
                                tree.remove(&ctx, &k);
                            }
                            _ => {
                                tree.get(&ctx, &k);
                            }
                        }
                    }
                });
            }
            std::thread::sleep(Duration::from_millis(300));
            stop.store(true, Ordering::Relaxed);
        });
        driver.stop();
        let ctx = tree.bench_ctx(0);
        let mut count = 0u64;
        let mut prev: Option<Vec<u8>> = None;
        tree.scan(&ctx, b"", usize::MAX, &mut |k, _| {
            if let Some(p) = &prev {
                assert!(p.as_slice() < k);
            }
            prev = Some(k.to_vec());
            count += 1;
        });
        assert!(count <= KEYS);
    }
}

#[test]
fn concurrent_scans_with_writers() {
    for shards in [1usize, 4] {
        concurrent_scans_with_writers_at(shards);
    }
}

/// Scanners must observe sorted, in-range keys while a writer churns —
/// with `shards > 1` every scan is a live k-way merge racing the writer.
fn concurrent_scans_with_writers_at(shards: usize) {
    let arena = PArena::builder().capacity_bytes(64 << 20).build().unwrap();
    let (store, _) = Store::open(
        &arena,
        Options::new()
            .threads(WORKERS)
            .log_bytes_per_thread(4 << 20)
            .shards(shards),
    )
    .unwrap();
    {
        let sess = store.session().unwrap();
        for i in 0..KEYS {
            store.put_u64(&sess, &i.to_be_bytes(), i);
        }
    }
    let driver = AdvanceDriver::spawn(store.epoch_manager().clone(), Duration::from_millis(4));
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        // One writer updating values (mixing u64 and byte-slice forms).
        {
            let store = store.clone();
            let stop = &stop;
            s.spawn(move || {
                let sess = store.session().unwrap();
                let mut rng = StdRng::seed_from_u64(1);
                while !stop.load(Ordering::Relaxed) {
                    let k = rng.gen_range(0..KEYS).to_be_bytes();
                    if rng.gen_bool(0.5) {
                        store.put_u64(&sess, &k, rng.gen());
                    } else {
                        let len = rng.gen_range(8..100usize);
                        store.put(&sess, &k, &vec![9u8; len]).unwrap();
                    }
                }
            });
        }
        // Two scanners verifying order continuously.
        for w in 1..WORKERS {
            let store = store.clone();
            let stop = &stop;
            s.spawn(move || {
                let sess = store.session().unwrap();
                let mut rng = StdRng::seed_from_u64(w as u64);
                while !stop.load(Ordering::Relaxed) {
                    let start = rng.gen_range(0..KEYS).to_be_bytes();
                    let mut prev: Option<Vec<u8>> = None;
                    store.scan(&sess, &start, 20, &mut |k, _| {
                        if let Some(p) = &prev {
                            assert!(p.as_slice() < k, "scan order violated");
                        }
                        assert!(k >= &start[..]);
                        prev = Some(k.to_vec());
                    });
                }
            });
        }
        std::thread::sleep(Duration::from_millis(300));
        stop.store(true, Ordering::Relaxed);
    });
    driver.stop();
}
