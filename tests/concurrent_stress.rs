//! Concurrent stress across crates: worker threads hammer each system
//! while the epoch driver checkpoints at a fast cadence; afterwards the
//! structures must be fully coherent.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use incll_repro::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const WORKERS: usize = 3;
const KEYS: u64 = 3_000;

/// Every thread writes values tagged with its tid into its own key slice;
/// afterwards each key holds a value its owner wrote.
fn stress_durable(incll_enabled: bool) {
    let arena = PArena::builder().capacity_bytes(128 << 20).build().unwrap();
    superblock::format(&arena);
    let tree = DurableMasstree::create(
        &arena,
        DurableConfig {
            threads: WORKERS,
            log_bytes_per_thread: 8 << 20,
            incll_enabled,
        },
    )
    .unwrap();
    let driver = AdvanceDriver::spawn(tree.epoch_manager().clone(), Duration::from_millis(4));
    let ops_done = AtomicU64::new(0);
    let stop = AtomicBool::new(false);

    std::thread::scope(|s| {
        for tid in 0..WORKERS {
            let tree = tree.clone();
            let ops_done = &ops_done;
            let stop = &stop;
            s.spawn(move || {
                let ctx = tree.thread_ctx(tid);
                let mut rng = StdRng::seed_from_u64(tid as u64 + 1);
                let mut local = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // Keys partitioned by tid => deterministic ownership.
                    let k = (rng.gen_range(0..KEYS / WORKERS as u64) * WORKERS as u64 + tid as u64)
                        .to_be_bytes();
                    match rng.gen_range(0..10) {
                        0..=5 => {
                            tree.put(&ctx, &k, (tid as u64) << 56 | local);
                            local += 1;
                        }
                        6..=7 => {
                            tree.remove(&ctx, &k);
                        }
                        _ => {
                            if let Some(v) = tree.get(&ctx, &k) {
                                assert_eq!(
                                    v >> 56,
                                    tid as u64,
                                    "thread {tid} read another thread's value"
                                );
                            }
                        }
                    }
                    ops_done.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        std::thread::sleep(Duration::from_millis(400));
        stop.store(true, Ordering::Relaxed);
    });
    driver.stop();
    assert!(ops_done.load(Ordering::Relaxed) > 1_000);

    // Full-tree coherence: scan is sorted, values belong to key owners.
    let ctx = tree.thread_ctx(0);
    let mut prev: Option<Vec<u8>> = None;
    tree.scan(&ctx, b"", usize::MAX, &mut |k, v| {
        if let Some(p) = &prev {
            assert!(p.as_slice() < k, "scan out of order");
        }
        let idx = u64::from_be_bytes(k.try_into().unwrap());
        assert_eq!(v >> 56, idx % WORKERS as u64, "value owner mismatch");
        prev = Some(k.to_vec());
    });
}

#[test]
fn durable_tree_concurrent_stress() {
    stress_durable(true);
}

#[test]
fn logging_mode_concurrent_stress() {
    stress_durable(false);
}

#[test]
fn transient_trees_concurrent_stress() {
    for mode in [AllocMode::Global, AllocMode::Pool] {
        let pool = PArena::builder().capacity_bytes(64 << 20).build().unwrap();
        let mgr = EpochManager::new(pool.clone(), EpochOptions::transient());
        let alloc = match mode {
            AllocMode::Global => TransientAlloc::new(mode, WORKERS, None),
            AllocMode::Pool => TransientAlloc::new(mode, WORKERS, Some(pool)),
        };
        let tree = std::sync::Arc::new(Masstree::new(mgr.clone(), alloc));
        let driver = AdvanceDriver::spawn(mgr, Duration::from_millis(4));
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            for tid in 0..WORKERS {
                let tree = tree.clone();
                let stop = &stop;
                s.spawn(move || {
                    let ctx = tree.thread_ctx(tid);
                    let mut rng = StdRng::seed_from_u64(tid as u64);
                    while !stop.load(Ordering::Relaxed) {
                        let k = rng.gen_range(0..KEYS).to_be_bytes();
                        match rng.gen_range(0..4) {
                            0 | 1 => {
                                tree.put(&ctx, &k, rng.gen());
                            }
                            2 => {
                                tree.remove(&ctx, &k);
                            }
                            _ => {
                                tree.get(&ctx, &k);
                            }
                        }
                    }
                });
            }
            std::thread::sleep(Duration::from_millis(300));
            stop.store(true, Ordering::Relaxed);
        });
        driver.stop();
        let ctx = tree.thread_ctx(0);
        let mut count = 0u64;
        let mut prev: Option<Vec<u8>> = None;
        tree.scan(&ctx, b"", usize::MAX, &mut |k, _| {
            if let Some(p) = &prev {
                assert!(p.as_slice() < k);
            }
            prev = Some(k.to_vec());
            count += 1;
        });
        assert!(count <= KEYS);
    }
}

#[test]
fn concurrent_scans_with_writers() {
    let arena = PArena::builder().capacity_bytes(64 << 20).build().unwrap();
    superblock::format(&arena);
    let tree = DurableMasstree::create(
        &arena,
        DurableConfig {
            threads: WORKERS,
            log_bytes_per_thread: 4 << 20,
            incll_enabled: true,
        },
    )
    .unwrap();
    {
        let ctx = tree.thread_ctx(0);
        for i in 0..KEYS {
            tree.put(&ctx, &i.to_be_bytes(), i);
        }
    }
    let driver = AdvanceDriver::spawn(tree.epoch_manager().clone(), Duration::from_millis(4));
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        // One writer updating values.
        {
            let tree = tree.clone();
            let stop = &stop;
            s.spawn(move || {
                let ctx = tree.thread_ctx(0);
                let mut rng = StdRng::seed_from_u64(1);
                while !stop.load(Ordering::Relaxed) {
                    let k = rng.gen_range(0..KEYS).to_be_bytes();
                    tree.put(&ctx, &k, rng.gen());
                }
            });
        }
        // Two scanners verifying order continuously.
        for tid in 1..WORKERS {
            let tree = tree.clone();
            let stop = &stop;
            s.spawn(move || {
                let ctx = tree.thread_ctx(tid);
                let mut rng = StdRng::seed_from_u64(tid as u64);
                while !stop.load(Ordering::Relaxed) {
                    let start = rng.gen_range(0..KEYS).to_be_bytes();
                    let mut prev: Option<Vec<u8>> = None;
                    tree.scan(&ctx, &start, 20, &mut |k, _| {
                        if let Some(p) = &prev {
                            assert!(p.as_slice() < k, "scan order violated");
                        }
                        assert!(k >= &start[..]);
                        prev = Some(k.to_vec());
                    });
                }
            });
        }
        std::thread::sleep(Duration::from_millis(300));
        stop.store(true, Ordering::Relaxed);
    });
    driver.stop();
}
