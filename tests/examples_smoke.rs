//! Workspace smoke test: every shipped example must run to completion.
//!
//! Each example is a self-checking scenario (quickstart, kvstore,
//! durable_alloc, crash_recovery, net_kv) that asserts internally and exits
//! non-zero on failure, so "exits 0" is a real end-to-end check of the
//! public API surface. CI runs this via plain `cargo test`.

use std::process::Command;

fn run_example(name: &str) {
    let output = Command::new(env!("CARGO"))
        .args(["run", "--quiet", "--example", name])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn cargo for example `{name}`: {e}"));
    assert!(
        output.status.success(),
        "example `{name}` failed with {}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        output.status,
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
}

#[test]
fn quickstart_runs() {
    run_example("quickstart");
}

#[test]
fn kvstore_runs() {
    run_example("kvstore");
}

#[test]
fn durable_alloc_runs() {
    run_example("durable_alloc");
}

#[test]
fn crash_recovery_runs() {
    run_example("crash_recovery");
}

#[test]
fn net_kv_runs() {
    run_example("net_kv");
}
