//! The borrowed read path, end to end through the `Store` facade:
//! `get_ref` equivalence with the copying reads, guard semantics under
//! concurrent mutation and checkpoints, epoch-snapshot scans that stay
//! open across per-shard checkpoints, and crash recovery feeding the
//! zero-copy path.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use incll_repro::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn options(shards: usize) -> Options {
    Options::new()
        .threads(4)
        .log_bytes_per_thread(1 << 20)
        .shards(shards)
}

fn fresh(shards: usize) -> Store {
    let arena = PArena::builder().capacity_bytes(64 << 20).build().unwrap();
    Store::open(&arena, options(shards)).unwrap().0
}

fn tracked_arena() -> PArena {
    PArena::builder()
        .capacity_bytes(64 << 20)
        .tracked(true)
        .build()
        .unwrap()
}

/// A value whose every byte carries the same tag: any mix of two
/// generations is detectable with a one-pass scan.
fn tagged(tag: u8, len: usize) -> Vec<u8> {
    vec![tag; len]
}

// ---------------------------------------------------------------------
// Equivalence of the four reads
// ---------------------------------------------------------------------

/// `get_ref` observes exactly the bytes `get`/`get_into`/`get_u64` copy
/// out, for assorted value lengths, on 1/2/8 shards.
#[test]
fn get_ref_matches_every_copying_read() {
    for shards in [1usize, 2, 8] {
        let store = fresh(shards);
        let sess = store.session().unwrap();
        let lengths = [0usize, 1, 7, 8, 9, 24, 100, 500, 2048];
        for (i, &len) in lengths.iter().enumerate() {
            let key = format!("key-{i:04}").into_bytes();
            let val = tagged(b'a' + i as u8, len);
            store.put(&sess, &key, &val).unwrap();
        }
        store.put_u64(&sess, b"u64-key", 0xDEAD_BEEF_u64);

        let mut buf = Vec::new();
        for (i, &len) in lengths.iter().enumerate() {
            let key = format!("key-{i:04}").into_bytes();
            let v = store.get_ref(&sess, &key).expect("present");
            assert_eq!(v.len(), len, "shards={shards}");
            assert_eq!(&*v, &store.get(&sess, &key).unwrap()[..]);
            assert!(store.get_into(&sess, &key, &mut buf));
            assert_eq!(&*v, &buf[..]);
            assert_eq!(v.to_vec(), buf);
            assert!(!v.is_stale(), "live value must not read as stale");
            assert!(v.shard() < shards);
        }
        // The u64 register decodes identically through both paths.
        let v = store.get_ref(&sess, b"u64-key").unwrap();
        assert_eq!(v.as_u64(), 0xDEAD_BEEF);
        assert_eq!(store.get_u64(&sess, b"u64-key"), Some(0xDEAD_BEEF));
        assert_eq!(
            u64::from_le_bytes(store.get(&sess, b"u64-key").unwrap().try_into().unwrap()),
            0xDEAD_BEEF
        );
        // Misses are None through every read.
        assert!(store.get_ref(&sess, b"absent").is_none());
        assert!(store.get(&sess, b"absent").is_none());
        assert!(!store.get_into(&sess, b"absent", &mut buf));
    }
}

// ---------------------------------------------------------------------
// Guards under concurrent mutation
// ---------------------------------------------------------------------

/// Overwriting (and removing) a value while a `ValueRef` to it is
/// outstanding: the borrowed bytes stay the *old* value — never torn —
/// and the cross-epoch free is detectable via `is_stale`.
#[test]
fn overwrite_under_outstanding_guard_reads_old_and_detects() {
    let store = fresh(1);
    let sess = store.session().unwrap();
    let old = tagged(b'O', 200);
    store.put(&sess, b"k", &old).unwrap();
    // Complete the epoch: the overwrite below frees the old buffer in a
    // *later* epoch, which rewrites both header words with a bumped
    // counter — staleness detection is deterministic, not best-effort.
    store.checkpoint();

    let v = store.get_ref(&sess, b"k").expect("present");
    assert!(!v.is_stale());
    // Same-session overwrite under the outstanding guard (read pins are
    // re-entrant with the write pin the put takes).
    store.put(&sess, b"k", &tagged(b'N', 200)).unwrap();
    assert_eq!(&*v, &old[..], "guard must keep the old bytes intact");
    assert!(v.iter().all(|&b| b == b'O'), "never torn");
    assert!(v.is_stale(), "cross-epoch overwrite must be detectable");
    drop(v);
    assert_eq!(store.get(&sess, b"k").unwrap(), tagged(b'N', 200));

    // Same story for remove.
    store.checkpoint();
    let v = store.get_ref(&sess, b"k").expect("present");
    store.remove(&sess, b"k");
    assert!(
        v.iter().all(|&b| b == b'N'),
        "old value intact after remove"
    );
    assert!(v.is_stale());
    drop(v);
    assert!(store.get_ref(&sess, b"k").is_none());
}

/// A guard held on one shard never blocks checkpoints of the *other*
/// shards, and stays valid across them.
#[test]
fn guard_survives_checkpoints_of_other_shards() {
    let shards = 8;
    let store = fresh(shards);
    let sess = store.session().unwrap();
    for i in 0..64u64 {
        store.put_u64(&sess, &storage_key(i), i);
    }
    let v = store.get_ref(&sess, &storage_key(0)).expect("present");
    let pinned = v.shard();
    for s in 0..shards {
        if s != pinned {
            store.checkpoint_shard(s);
        }
    }
    assert_eq!(v.as_u64(), 0, "guard valid across other shards' advances");
    assert!(!v.is_stale());
    drop(v);
    store.checkpoint_shard(pinned); // and the pinned one, once released
}

/// Writer flips a key between two tagged generations while readers deref
/// borrowed views under a fast checkpoint cadence: every observed value
/// is wholly one generation.
#[test]
fn hammered_get_ref_is_never_torn() {
    let store = fresh(2);
    {
        let sess = store.session().unwrap();
        store.put(&sess, b"hot", &tagged(0xAA, 512)).unwrap();
    }
    let driver = AdvanceDriver::spawn(store.epoch_manager().clone(), Duration::from_millis(2));
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        {
            let store = store.clone();
            let stop = &stop;
            s.spawn(move || {
                let sess = store.session().unwrap();
                let mut gen = 0u8;
                while !stop.load(Ordering::Relaxed) {
                    let tag = if gen.is_multiple_of(2) { 0xAA } else { 0x55 };
                    store.put(&sess, b"hot", &tagged(tag, 512)).unwrap();
                    gen = gen.wrapping_add(1);
                }
            });
        }
        for _ in 0..2 {
            let store = store.clone();
            let stop = &stop;
            s.spawn(move || {
                let sess = store.session().unwrap();
                while !stop.load(Ordering::Relaxed) {
                    let v = store.get_ref(&sess, b"hot").expect("always present");
                    let first = v[0];
                    assert!(first == 0xAA || first == 0x55);
                    assert!(v.iter().all(|&b| b == first), "torn read");
                    assert_eq!(v.len(), 512);
                }
            });
        }
        std::thread::sleep(Duration::from_millis(100));
        stop.store(true, Ordering::Relaxed);
    });
    driver.stop();
}

// ---------------------------------------------------------------------
// Epoch-snapshot scans vs checkpoints
// ---------------------------------------------------------------------

/// Acceptance: a `range` scan held open across `checkpoint_shard` on
/// **every** shard completes with globally ordered, non-torn results.
#[test]
fn range_scan_survives_checkpoints_of_every_shard() {
    let shards = 8;
    let store = fresh(shards);
    let sess = store.session().unwrap();
    let mut model = BTreeMap::new();
    for i in 0..1_000u64 {
        let key = storage_key(i).to_vec();
        let val = tagged((i % 251) as u8, 8 + (i % 64) as usize);
        store.put(&sess, &key, &val).unwrap();
        model.insert(key, val);
    }

    let mut seen = Vec::new();
    let mut scan = store.range(&sess, &b""[..]..);
    for step in 0.. {
        // Checkpoint every shard, repeatedly, while the scan is open.
        store.checkpoint_shard(step % shards);
        match scan.next() {
            Some((k, v)) => seen.push((k, v)),
            None => break,
        }
    }
    assert_eq!(seen.len(), model.len(), "scan must be complete");
    let expect: Vec<(Vec<u8>, Vec<u8>)> = model.into_iter().collect();
    assert_eq!(seen, expect, "globally ordered, values intact");
}

/// The scan callback may itself checkpoint the very shard it is reading:
/// no pin is held while `f` runs.
#[test]
fn scan_callback_may_checkpoint_its_own_shard() {
    let store = fresh(1);
    let sess = store.session().unwrap();
    for i in 0..300u64 {
        store.put_u64(&sess, &storage_key(i), i);
    }
    let mut visited = 0usize;
    let n = store.scan(&sess, b"", usize::MAX, &mut |_, v| {
        assert_eq!(v.len(), 8);
        visited += 1;
        if visited.is_multiple_of(10) {
            store.checkpoint_shard(0);
        }
    });
    assert_eq!(n, 300);
    assert_eq!(visited, 300);
}

/// A pure-read workload — `get_ref` lookups and full scans — never marks
/// a domain dirty: lazy per-domain cadence drivers skip every tick and
/// the epochs stay where they started.
#[test]
fn pure_reads_leave_lazy_cadence_idle() {
    let shards = 2;
    let store = fresh(shards);
    let sess = store.session().unwrap();
    for i in 0..200u64 {
        store.put_u64(&sess, &storage_key(i), i);
    }
    store.checkpoint(); // flush the load, start from a clean boundary
    let mgr = store.epoch_manager().clone();
    let before: Vec<u64> = (0..shards).map(|d| mgr.current_epoch_of(d)).collect();
    let driver = AdvanceDriver::spawn_per_domain(
        mgr.clone(),
        vec![DomainCadence::lazy(Duration::from_millis(1)); shards],
    );
    let t0 = std::time::Instant::now();
    while t0.elapsed() < Duration::from_millis(30) {
        for i in 0..50u64 {
            assert!(store.get_ref(&sess, &storage_key(i)).is_some());
        }
        store.scan(&sess, b"", usize::MAX, &mut |_, _| {});
    }
    driver.stop();
    let after: Vec<u64> = (0..shards).map(|d| mgr.current_epoch_of(d)).collect();
    assert_eq!(before, after, "read-only traffic must not force advances");
}

// ---------------------------------------------------------------------
// Crash recovery feeds the borrowed path
// ---------------------------------------------------------------------

/// Checkpointed values survive a crash and read back — bit-exact —
/// through `get_ref`; doomed-epoch writes are invisible to it.
#[test]
fn get_ref_after_crash_recovery() {
    let arena = tracked_arena();
    let mut model = BTreeMap::new();
    {
        let (store, _) = Store::open(&arena, options(2)).unwrap();
        let sess = store.session().unwrap();
        for i in 0..400u64 {
            let key = storage_key(i).to_vec();
            let val = tagged((i % 250) as u8, 1 + (i % 96) as usize);
            store.put(&sess, &key, &val).unwrap();
            model.insert(key, val);
        }
        store.checkpoint();
        // Doomed epoch: overwrites and inserts that must roll back.
        for i in 0..400u64 {
            store.put(&sess, &storage_key(i), b"doomed").unwrap();
        }
        store.put(&sess, b"doomed-insert", b"x").unwrap();
    }
    arena.crash_seeded(0xC0FFEE);
    let (store, _) = Store::open(&arena, options(2)).unwrap();
    let sess = store.session().unwrap();
    for (key, val) in &model {
        let v = store.get_ref(&sess, key).expect("checkpointed key");
        assert_eq!(&*v, &val[..], "recovered bytes must be exact");
        assert!(!v.is_stale());
    }
    assert!(store.get_ref(&sess, b"doomed-insert").is_none());
}

// ---------------------------------------------------------------------
// Model sweep
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random put/overwrite/remove sequences against a BTreeMap oracle:
    /// after every op, `get_ref` agrees with the oracle on the touched
    /// key; at the end, on every key ever used. Shards 1/2/8.
    #[test]
    fn get_ref_agrees_with_model(seed in any::<u64>(), shard_sel in 0usize..3) {
        let shards = [1usize, 2, 8][shard_sel];
        let store = fresh(shards);
        let sess = store.session().unwrap();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        let mut rng = StdRng::seed_from_u64(seed);
        for step in 0..300u32 {
            let key = format!("k{:03}", rng.gen_range(0..60)).into_bytes();
            match rng.gen_range(0..10) {
                0..=5 => {
                    let len = rng.gen_range(0..300usize);
                    let val = tagged(rng.gen(), len);
                    store.put(&sess, &key, &val).unwrap();
                    model.insert(key.clone(), val);
                }
                6..=7 => {
                    store.remove(&sess, &key);
                    model.remove(&key);
                }
                _ => {}
            }
            if step % 50 == 0 {
                store.checkpoint();
            }
            let got = store.get_ref(&sess, &key).map(|v| v.to_vec());
            prop_assert_eq!(&got, &model.get(&key).cloned(), "shards={}", shards);
        }
        for (key, val) in &model {
            let v = store.get_ref(&sess, key).expect("model key present");
            prop_assert_eq!(&*v, &val[..]);
        }
    }
}
