//! Property-based tests on the core data structures and invariants,
//! driven through the public `Store` facade (the allocator-header
//! properties live in `incll-palloc`'s own suite).

use std::collections::BTreeMap;

use incll_repro::prelude::*;
use proptest::prelude::*;

use incll::layout::val_incll;
use incll_masstree::key::{entry_cmp, ikey_of, KeyCursor, KLEN_LAYER};
use incll_masstree::Permutation;

// ---------------------------------------------------------------------
// Permutation algebra
// ---------------------------------------------------------------------

proptest! {
    /// Arbitrary insert/remove sequences keep the permutation a valid
    /// permutation and agree with a Vec model.
    #[test]
    fn permutation_matches_vec_model(ops in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..200)) {
        let mut p = Permutation::<15>::empty();
        let mut model: Vec<usize> = Vec::new();
        for (sel, pos) in ops {
            if p.is_full() || (!p.is_empty() && sel % 2 == 0) {
                let at = pos as usize % p.len();
                p.remove_at(at);
                model.remove(at);
            } else {
                let at = pos as usize % (p.len() + 1);
                let slot = p.insert_at(at);
                model.insert(at, slot);
            }
            prop_assert!(p.is_valid());
            prop_assert_eq!(p.occupied().collect::<Vec<_>>(), model.clone());
        }
    }

    /// Truncation keeps a valid permutation holding exactly the prefix.
    #[test]
    fn permutation_truncation(keep in 0usize..14, fills in 1usize..14) {
        let mut p = Permutation::<14>::empty();
        let mut slots = Vec::new();
        for i in 0..fills {
            slots.push(p.insert_at(i));
        }
        let keep = keep.min(fills);
        let t = p.truncated(keep);
        prop_assert!(t.is_valid());
        prop_assert_eq!(t.len(), keep);
        prop_assert_eq!(t.occupied().collect::<Vec<_>>(), slots[..keep].to_vec());
    }
}

// ---------------------------------------------------------------------
// Packed-word round trips
// ---------------------------------------------------------------------

proptest! {
    /// ValInCLL packing is lossless for every representable triple.
    #[test]
    fn val_incll_roundtrip(ptr in 0u64..(1 << 44), idx in 0usize..15, ep in any::<u16>()) {
        let ptr = ptr << 4; // 16-aligned, < 2^48
        let w = val_incll::pack(ptr, idx, ep);
        prop_assert_eq!(val_incll::ptr(w), ptr);
        prop_assert_eq!(val_incll::idx(w), idx);
        prop_assert_eq!(val_incll::low16(w), ep);
    }
}

// ---------------------------------------------------------------------
// Key slicing agrees with lexicographic order
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn layered_key_order_is_lexicographic(a in proptest::collection::vec(any::<u8>(), 0..24),
                                          b in proptest::collection::vec(any::<u8>(), 0..24)) {
        let expect = a.cmp(&b);
        let mut ca = KeyCursor::new(&a);
        let mut cb = KeyCursor::new(&b);
        let got = loop {
            let ka = if ca.is_terminal() { ca.klen() } else { KLEN_LAYER };
            let kb = if cb.is_terminal() { cb.klen() } else { KLEN_LAYER };
            let ord = entry_cmp(ca.ikey(), ka, cb.ikey(), kb);
            if ord != std::cmp::Ordering::Equal {
                break ord;
            }
            if ca.is_terminal() && cb.is_terminal() {
                break std::cmp::Ordering::Equal;
            }
            ca.descend();
            cb.descend();
        };
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn ikey_is_order_preserving_on_prefixes(a in proptest::collection::vec(any::<u8>(), 0..8),
                                            b in proptest::collection::vec(any::<u8>(), 0..8)) {
        // For keys ≤ 8 bytes, (ikey, len) comparison == byte comparison.
        let ord = (ikey_of(&a), a.len()).cmp(&(ikey_of(&b), b.len()));
        prop_assert_eq!(ord, a.cmp(&b));
    }
}

// ---------------------------------------------------------------------
// Zipfian stays in range
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn zipf_indices_in_range(n in 1u64..5_000, seed in any::<u64>()) {
        use rand::SeedableRng;
        let z = incll_ycsb::ScrambledZipfian::new(n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert!(z.next_index(&mut rng) < n);
        }
    }
}

// ---------------------------------------------------------------------
// Store vs model under random op tapes (single session)
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Op {
    Put(u8, u64),
    PutBytes(u8, Vec<u8>),
    Remove(u8),
    Get(u8),
    Advance,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (any::<u8>(), any::<u64>()).prop_map(|(k, v)| Op::Put(k, v)),
        3 => (any::<u8>(), proptest::collection::vec(any::<u8>(), 0..512))
            .prop_map(|(k, v)| Op::PutBytes(k, v)),
        2 => any::<u8>().prop_map(Op::Remove),
        2 => any::<u8>().prop_map(Op::Get),
        1 => Just(Op::Advance),
    ]
}

/// Data ops only (no all-shard advances): the per-shard-boundary property
/// schedules its own `checkpoint_shard` calls.
fn data_op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (any::<u8>(), any::<u64>()).prop_map(|(k, v)| Op::Put(k, v)),
        3 => (any::<u8>(), proptest::collection::vec(any::<u8>(), 0..512))
            .prop_map(|(k, v)| Op::PutBytes(k, v)),
        2 => any::<u8>().prop_map(Op::Remove),
        2 => any::<u8>().prop_map(Op::Get),
    ]
}

fn open_store(arena: &PArena, shards: usize) -> Store {
    open_store_with(arena, shards, 1).0
}

fn open_store_with(arena: &PArena, shards: usize, workers: usize) -> (Store, RecoveryReport) {
    open_store_with_g(arena, shards, workers, 0)
}

fn open_store_with_g(
    arena: &PArena,
    shards: usize,
    workers: usize,
    gran: usize,
) -> (Store, RecoveryReport) {
    Store::open(
        arena,
        Options::new()
            .threads(1)
            .log_bytes_per_thread(1 << 20)
            .shards(shards)
            .recovery_threads(workers)
            .persistence_granularity(gran),
    )
    .unwrap()
}

/// The shard counts the store-level properties sweep (1 = the unsharded
/// baseline; 2 and 4 exercise routing, merged scans, and cross-shard
/// crash atomicity).
fn shard_strategy() -> impl Strategy<Value = usize> {
    prop_oneof![Just(1usize), Just(2), Just(4)]
}

/// Recovery worker counts the crash properties sweep: every tape is
/// model-checked under both sequential (1) and parallel recovery.
fn worker_strategy() -> impl Strategy<Value = usize> {
    prop_oneof![Just(1usize), Just(2), Just(4)]
}

/// Persistence granularities the crash properties sweep: 0 is the eager
/// legacy path (one fence per entry), 256 forces frequent threshold
/// drains, 4096 leaves most drains to op boundaries. Crash semantics
/// must not depend on the choice.
fn granularity_strategy() -> impl Strategy<Value = usize> {
    prop_oneof![Just(0usize), Just(256), Just(4096)]
}

/// Applies `op` to both the store and the model.
fn apply(store: &Store, sess: &Session, model: &mut BTreeMap<u8, Vec<u8>>, op: &Op) {
    match op {
        Op::Put(k, v) => {
            store.put_u64(sess, &[*k], *v);
            model.insert(*k, v.to_le_bytes().to_vec());
        }
        Op::PutBytes(k, v) => {
            store.put(sess, &[*k], v).unwrap();
            model.insert(*k, v.clone());
        }
        Op::Remove(k) => {
            store.remove(sess, &[*k]);
            model.remove(k);
        }
        Op::Get(k) => {
            store.get(sess, &[*k]);
        }
        Op::Advance => {
            store.checkpoint();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    /// The durable store agrees with a BTreeMap across epoch boundaries,
    /// with u64 and variable-length byte values interleaved — at every
    /// shard count (routing + the merged iterator must be transparent).
    #[test]
    fn durable_store_matches_model(
        ops in proptest::collection::vec(op_strategy(), 1..300),
        shards in shard_strategy(),
    ) {
        let arena = PArena::builder().capacity_bytes(32 << 20).build().unwrap();
        let store = open_store(&arena, shards);
        let sess = store.session().unwrap();
        let mut model: BTreeMap<u8, Vec<u8>> = BTreeMap::new();
        for op in &ops {
            // Observed results must agree op-by-op...
            match op {
                Op::Put(k, v) => {
                    let old = store.put_u64(&sess, &[*k], *v);
                    let model_old = model.insert(*k, v.to_le_bytes().to_vec());
                    match &model_old {
                        None => prop_assert_eq!(old, None),
                        Some(b) if b.len() == 8 => {
                            prop_assert_eq!(
                                old,
                                Some(u64::from_le_bytes(b[..8].try_into().unwrap()))
                            );
                        }
                        // The prior value wasn't 8 bytes: the convenience
                        // form's return is unspecified beyond presence
                        // (use `put` to see the full previous bytes).
                        Some(_) => prop_assert!(old.is_some()),
                    }
                }
                Op::PutBytes(k, v) => {
                    prop_assert_eq!(store.put(&sess, &[*k], v).unwrap(), model.insert(*k, v.clone()));
                }
                Op::Remove(k) => {
                    prop_assert_eq!(store.remove(&sess, &[*k]), model.remove(k).is_some());
                }
                Op::Get(k) => {
                    prop_assert_eq!(store.get(&sess, &[*k]), model.get(k).cloned());
                }
                Op::Advance => {
                    store.checkpoint();
                }
            }
        }
        // ...and so must the final iteration order.
        let scanned: Vec<(u8, Vec<u8>)> = store.iter(&sess).map(|(k, v)| (k[0], v)).collect();
        let expect: Vec<(u8, Vec<u8>)> = model.into_iter().collect();
        prop_assert_eq!(scanned, expect);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// Crash consistency as a property, at every shard count **and every
    /// recovery worker count**: any op tape of variable-length values
    /// interleaved with epoch advances — the tail may itself contain
    /// advances, so the crash can land an arbitrary distance past the
    /// last completed boundary — plus any crash seed. Recovery lands
    /// exactly on the state at the last completed checkpoint, on
    /// **every** shard at once, whether the shards replay sequentially
    /// or in parallel.
    #[test]
    fn crash_recovers_to_checkpoint(
        committed in proptest::collection::vec(op_strategy(), 0..120),
        doomed in proptest::collection::vec(op_strategy(), 1..120),
        crash_seed in any::<u64>(),
        shards in shard_strategy(),
        workers in worker_strategy(),
        gran in granularity_strategy(),
    ) {
        let arena = PArena::builder()
            .capacity_bytes(32 << 20)
            .tracked(true)
            .build()
            .unwrap();
        let store = open_store_with_g(&arena, shards, 1, gran).0;
        let mut model: BTreeMap<u8, Vec<u8>> = BTreeMap::new();
        {
            let sess = store.session().unwrap();
            for op in &committed {
                apply(&store, &sess, &mut model, op);
            }
            store.checkpoint(); // the checkpoint
            let mut doomed_model = model.clone();
            for op in &doomed {
                apply(&store, &sess, &mut doomed_model, op);
                if matches!(op, Op::Advance) {
                    // A mid-tape advance completed: everything before it —
                    // across all shards — is now the recovery target.
                    model = doomed_model.clone();
                }
            }
        }
        drop(store);
        arena.crash_seeded(crash_seed);
        let (store, report) = open_store_with_g(&arena, shards, workers, gran);
        prop_assert_eq!(report.parallel_workers, workers.min(shards));
        let sess = store.session().unwrap();
        let scanned: Vec<(u8, Vec<u8>)> = store.iter(&sess).map(|(k, v)| (k[0], v)).collect();
        let expect: Vec<(u8, Vec<u8>)> = model.into_iter().collect();
        prop_assert_eq!(scanned, expect);
    }
}

/// Copies `working`'s entries for every key routed to `shard` into
/// `expect` (and removes the absent ones): the model-side image of "shard
/// `shard` just completed a checkpoint".
fn commit_shard(
    expect: &mut BTreeMap<u8, Vec<u8>>,
    working: &BTreeMap<u8, Vec<u8>>,
    store: &Store,
    shard: usize,
) {
    for k in 0..=255u8 {
        if store.shard_of(&[k]) == shard {
            match working.get(&k) {
                Some(v) => {
                    expect.insert(k, v.clone());
                }
                None => {
                    expect.remove(&k);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// The tentpole's crash matrix: shards ∈ {1, 2, 4}, each shard given a
    /// **different** number of `checkpoint_shard` advances interleaved
    /// with random mutation rounds, then a seeded crash. Recovery must
    /// land every shard on **its own** last completed boundary — shards
    /// that advanced recently keep their recent writes, shards that did
    /// not roll all the way back to the initial barrier — and the report
    /// must name each shard's failed/recovered epochs exactly.
    #[test]
    fn per_shard_boundaries_recover_independently(
        committed in proptest::collection::vec(data_op_strategy(), 0..60),
        rounds in proptest::collection::vec(
            proptest::collection::vec(data_op_strategy(), 1..40), 1..4),
        advance_quota in proptest::collection::vec(0usize..4, 4..5),
        crash_seed in any::<u64>(),
        shards in shard_strategy(),
        workers in worker_strategy(),
        gran in granularity_strategy(),
    ) {
        let arena = PArena::builder()
            .capacity_bytes(32 << 20)
            .tracked(true)
            .build()
            .unwrap();
        let store = open_store_with_g(&arena, shards, 1, gran).0;
        let mut working: BTreeMap<u8, Vec<u8>> = BTreeMap::new();
        let mut advances_done = vec![0u64; shards];
        let expect = {
            let sess = store.session().unwrap();
            for op in &committed {
                apply(&store, &sess, &mut working, op);
            }
            store.checkpoint(); // the common barrier every shard starts from
            let mut expect = working.clone();
            for (round, chunk) in rounds.iter().enumerate() {
                for op in chunk {
                    apply(&store, &sess, &mut working, op);
                }
                // Stagger per-shard checkpoints: shard s advances in the
                // first `advance_quota[s]` rounds only, so the boundaries
                // drift apart.
                for s in 0..shards {
                    if advance_quota[s] > round {
                        store.checkpoint_shard(s);
                        advances_done[s] += 1;
                        commit_shard(&mut expect, &working, &store, s);
                    }
                }
            }
            expect
        };
        drop(store);
        arena.crash_seeded(crash_seed);

        let (store, report) = open_store_with_g(&arena, shards, workers, gran);
        // Each shard's failed epoch is exactly its own advance history:
        // Epoch 2 at create (the mkfs epoch is sealed), +1 for the common
        // barrier, +1 per checkpoint_shard. True at every recovery worker
        // count.
        prop_assert_eq!(report.parallel_workers, workers.min(shards));
        prop_assert_eq!(report.per_shard.len(), shards);
        for (s, rep) in report.per_shard.iter().enumerate() {
            prop_assert_eq!(rep.shard, s);
            prop_assert_eq!(rep.failed_epoch, 3 + advances_done[s],
                "shard {} advanced {} times", s, advances_done[s]);
            prop_assert_eq!(rep.recovered_epoch, rep.failed_epoch + 1);
        }
        let sess = store.session().unwrap();
        let scanned: Vec<(u8, Vec<u8>)> = store.iter(&sess).map(|(k, v)| (k[0], v)).collect();
        let want: Vec<(u8, Vec<u8>)> = expect.into_iter().collect();
        prop_assert_eq!(scanned, want);
    }
}

// ---------------------------------------------------------------------
// Cross-shard write batches vs the committed-batches-only model
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum BatchOpT {
    Put(u8, u8),
    Delete(u8),
}

impl BatchOpT {
    fn key(&self) -> u8 {
        match self {
            BatchOpT::Put(k, _) | BatchOpT::Delete(k) => *k,
        }
    }
}

#[derive(Debug, Clone)]
enum BatchEvent {
    /// Stage 1–8 mixed puts/deletes; commit the batch, or leave it
    /// in-doubt (intents durable, no commit record).
    Batch { ops: Vec<BatchOpT>, commit: bool },
    /// `checkpoint_shard` on one shard: its fast-path batches become
    /// durable, its intents are discarded, its batch-table bits retire.
    AdvanceShard(u8),
}

fn batch_event_strategy() -> impl Strategy<Value = BatchEvent> {
    let op = prop_oneof![
        3 => (any::<u8>(), any::<u8>()).prop_map(|(k, v)| BatchOpT::Put(k, v)),
        1 => any::<u8>().prop_map(BatchOpT::Delete),
    ];
    prop_oneof![
        3 => (proptest::collection::vec(op, 1..9), any::<bool>())
            .prop_map(|(ops, commit)| BatchEvent::Batch { ops, commit }),
        1 => any::<u8>().prop_map(BatchEvent::AdvanceShard),
    ]
}

/// Deterministic variable-length batch value.
fn vval(seed: u8) -> Vec<u8> {
    let len = (seed as usize * 7) % 48;
    (0..len).map(|j| seed.wrapping_add(j as u8)).collect()
}

/// A resolved tape event, as it actually executed.
enum BatchDone {
    Batch {
        ops: Vec<BatchOpT>,
        committed: bool,
        cross: bool,
    },
    Advance(usize),
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// The batch subsystem's crash property: random tapes of write
    /// batches (sizes 1–8, mixed puts and deletes, committed or left
    /// in-doubt) interleaved with per-shard advances, then a seeded
    /// crash. The recovered contents must equal the
    /// committed-batches-only model — in-doubt batches fully absent,
    /// committed cross-shard batches fully present (redone from
    /// intents), fast-path batches present exactly when their shard
    /// checkpointed afterwards — under both sequential and parallel
    /// recovery.
    #[test]
    fn batch_tapes_recover_to_committed_batches_only(
        base in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..40),
        events in proptest::collection::vec(batch_event_strategy(), 1..12),
        crash_seed in any::<u64>(),
        shards in shard_strategy(),
        workers in prop_oneof![Just(1usize), Just(4)],
        gran in granularity_strategy(),
    ) {
        use std::collections::BTreeSet;

        let arena = PArena::builder()
            .capacity_bytes(32 << 20)
            .tracked(true)
            .build()
            .unwrap();
        let store = open_store_with_g(&arena, shards, 1, gran).0;
        let mut base_model: BTreeMap<u8, Vec<u8>> = BTreeMap::new();
        let mut done: Vec<BatchDone> = Vec::new();
        {
            let sess = store.session().unwrap();
            for (k, v) in &base {
                store.put(&sess, &[*k], &vval(*v)).unwrap();
                base_model.insert(*k, vval(*v));
            }
            store.checkpoint(); // the barrier every shard starts from
            let mut committed_cross = 0usize;
            for ev in &events {
                match ev {
                    BatchEvent::Batch { ops, commit } => {
                        let touched: BTreeSet<usize> =
                            ops.iter().map(|o| store.shard_of(&[o.key()])).collect();
                        let cross = touched.len() > 1;
                        // The 8-slot batch table evicts by forcing
                        // boundaries the model doesn't track: cap the
                        // committed cross-shard batches in flight.
                        let commit = *commit && !(cross && committed_cross >= 8);
                        let mut b = sess.batch();
                        for op in ops {
                            match op {
                                BatchOpT::Put(k, v) => b.put(&[*k], &vval(*v)).unwrap(),
                                BatchOpT::Delete(k) => b.delete(&[*k]).unwrap(),
                            }
                        }
                        let id = if commit {
                            b.commit().unwrap()
                        } else {
                            b.stage_without_commit().unwrap()
                        };
                        prop_assert_eq!(id > 0, cross,
                            "only cross-shard batches take the slow path");
                        if commit && cross {
                            committed_cross += 1;
                        }
                        done.push(BatchDone::Batch {
                            ops: ops.clone(),
                            committed: commit,
                            cross,
                        });
                    }
                    BatchEvent::AdvanceShard(s) => {
                        let s = *s as usize % shards;
                        store.checkpoint_shard(s);
                        done.push(BatchDone::Advance(s));
                    }
                }
            }
        }
        drop(store);
        arena.crash_seeded(crash_seed);

        let (store, report) = open_store_with_g(&arena, shards, workers, gran);
        prop_assert_eq!(report.parallel_workers, workers.min(shards));

        // The model: a batch's ops survive iff it committed AND either it
        // was cross-shard (recovery redoes it from its durable intents)
        // or its one shard checkpointed after it (ordinary durability).
        let mut last_adv = vec![None::<usize>; shards];
        for (i, d) in done.iter().enumerate() {
            if let BatchDone::Advance(s) = d {
                last_adv[*s] = Some(i);
            }
        }
        let mut expect = base_model;
        for (i, d) in done.iter().enumerate() {
            if let BatchDone::Batch { ops, committed, cross } = d {
                if !committed {
                    continue;
                }
                let durable = *cross || {
                    let s = store.shard_of(&[ops[0].key()]);
                    last_adv[s].is_some_and(|j| j > i)
                };
                if !durable {
                    continue;
                }
                for op in ops {
                    match op {
                        BatchOpT::Put(k, v) => {
                            expect.insert(*k, vval(*v));
                        }
                        BatchOpT::Delete(k) => {
                            expect.remove(k);
                        }
                    }
                }
            }
        }
        let sess = store.session().unwrap();
        let scanned: Vec<(u8, Vec<u8>)> = store.iter(&sess).map(|(k, v)| (k[0], v)).collect();
        let want: Vec<(u8, Vec<u8>)> = expect.into_iter().collect();
        prop_assert_eq!(scanned, want);
    }
}

// ---------------------------------------------------------------------
// Per-shard allocator arenas: carve frontiers never overlap
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    /// Any interleaving of allocations across domains, threads, size
    /// classes and epochs: every payload stays inside an extent its own
    /// domain owns, and no two live payloads overlap — per-shard carve
    /// frontiers never hand out the same slab twice, within or across
    /// shards, even as shards claim new extents from the shared pool.
    #[test]
    fn per_shard_carve_frontiers_never_hand_out_overlapping_slabs(
        tape in proptest::collection::vec(
            (0usize..4, 0usize..2, 0usize..5, 1u64..4), 1..150),
        domains in prop_oneof![Just(2usize), Just(4)],
    ) {
        use incll_palloc::PAlloc;
        use incll_pmem::superblock;

        let arena = PArena::builder().capacity_bytes(32 << 20).build().unwrap();
        superblock::format(&arena);
        let alloc = PAlloc::create_sharded(&arena, 2, domains).unwrap();
        // Sizes spanning several classes, including slab-forcing big ones.
        let sizes = [16usize, 100, 600, 1500, 3500];
        let mut live: Vec<(u64, u64, usize)> = Vec::new(); // (start, end, domain)
        for &(d, t, szi, epoch) in &tape {
            let d = d % domains;
            let size = sizes[szi];
            let p = alloc.alloc_in(t, d, epoch, size).unwrap();
            let end = p + size as u64;
            let owned = alloc.owned_extents(d);
            prop_assert!(
                owned.iter().any(|&(rs, rl)| p >= rs && end <= rl),
                "payload [{p:#x}, {end:#x}) lies in no extent owned by domain {d} ({owned:x?})"
            );
            for &(q, qe, qd) in &live {
                prop_assert!(
                    end <= q || qe <= p,
                    "[{p:#x}, {end:#x}) of domain {d} overlaps [{q:#x}, {qe:#x}) of domain {qd}"
                );
            }
            live.push((p, end, d));
        }
        // Distinct domains never share an extent.
        for a in 0..domains {
            for b in a + 1..domains {
                for &(s, e) in &alloc.owned_extents(a) {
                    for &(s2, e2) in &alloc.owned_extents(b) {
                        prop_assert!(e <= s2 || s >= e2, "domains {a}/{b} share an extent");
                    }
                }
            }
        }
    }
}
