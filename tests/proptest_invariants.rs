//! Property-based tests on the core data structures and invariants.

use std::collections::BTreeMap;

use incll_repro::prelude::*;
use proptest::prelude::*;

use incll::layout::val_incll;
use incll_masstree::key::{entry_cmp, ikey_of, KeyCursor, KLEN_LAYER};
use incll_masstree::Permutation;
use incll_palloc::header;

// ---------------------------------------------------------------------
// Permutation algebra
// ---------------------------------------------------------------------

proptest! {
    /// Arbitrary insert/remove sequences keep the permutation a valid
    /// permutation and agree with a Vec model.
    #[test]
    fn permutation_matches_vec_model(ops in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..200)) {
        let mut p = Permutation::<15>::empty();
        let mut model: Vec<usize> = Vec::new();
        for (sel, pos) in ops {
            if p.is_full() || (!p.is_empty() && sel % 2 == 0) {
                let at = pos as usize % p.len();
                p.remove_at(at);
                model.remove(at);
            } else {
                let at = pos as usize % (p.len() + 1);
                let slot = p.insert_at(at);
                model.insert(at, slot);
            }
            prop_assert!(p.is_valid());
            prop_assert_eq!(p.occupied().collect::<Vec<_>>(), model.clone());
        }
    }

    /// Truncation keeps a valid permutation holding exactly the prefix.
    #[test]
    fn permutation_truncation(keep in 0usize..14, fills in 1usize..14) {
        let mut p = Permutation::<14>::empty();
        let mut slots = Vec::new();
        for i in 0..fills {
            slots.push(p.insert_at(i));
        }
        let keep = keep.min(fills);
        let t = p.truncated(keep);
        prop_assert!(t.is_valid());
        prop_assert_eq!(t.len(), keep);
        prop_assert_eq!(t.occupied().collect::<Vec<_>>(), slots[..keep].to_vec());
    }
}

// ---------------------------------------------------------------------
// Packed-word round trips
// ---------------------------------------------------------------------

proptest! {
    /// ValInCLL packing is lossless for every representable triple.
    #[test]
    fn val_incll_roundtrip(ptr in 0u64..(1 << 44), idx in 0usize..15, ep in any::<u16>()) {
        let ptr = ptr << 4; // 16-aligned, < 2^48
        let w = val_incll::pack(ptr, idx, ep);
        prop_assert_eq!(val_incll::ptr(w), ptr);
        prop_assert_eq!(val_incll::idx(w), idx);
        prop_assert_eq!(val_incll::low16(w), ep);
    }

    /// Allocator header packing is lossless and the torn-write counter
    /// detection triggers exactly on counter mismatch.
    #[test]
    fn palloc_header_roundtrip(ptr in 0u64..(1 << 44), c in 0u8..4, ep in any::<u16>()) {
        let ptr = ptr << 4;
        let w = header::pack(ptr, c, ep);
        prop_assert_eq!(header::ptr(w), ptr);
        prop_assert_eq!(header::counter(w), c);
        prop_assert_eq!(header::epoch16(w), ep);
    }

    #[test]
    fn palloc_header_torn_detection(p0 in 0u64..(1 << 40), p1 in 0u64..(1 << 40), c0 in 0u8..4, c1 in 0u8..4) {
        let w0 = header::pack(p0 << 4, c0, 1);
        let w1 = header::pack(p1 << 4, c1, 2);
        let d = header::decode(w0, w1, |_| false);
        if c0 != c1 {
            prop_assert!(d.torn);
            prop_assert_eq!(d.next, p1 << 4); // word1 is authoritative
        } else {
            prop_assert!(!d.torn);
            prop_assert_eq!(d.next, p0 << 4);
        }
    }
}

// ---------------------------------------------------------------------
// Key slicing agrees with lexicographic order
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn layered_key_order_is_lexicographic(a in proptest::collection::vec(any::<u8>(), 0..24),
                                          b in proptest::collection::vec(any::<u8>(), 0..24)) {
        let expect = a.cmp(&b);
        let mut ca = KeyCursor::new(&a);
        let mut cb = KeyCursor::new(&b);
        let got = loop {
            let ka = if ca.is_terminal() { ca.klen() } else { KLEN_LAYER };
            let kb = if cb.is_terminal() { cb.klen() } else { KLEN_LAYER };
            let ord = entry_cmp(ca.ikey(), ka, cb.ikey(), kb);
            if ord != std::cmp::Ordering::Equal {
                break ord;
            }
            if ca.is_terminal() && cb.is_terminal() {
                break std::cmp::Ordering::Equal;
            }
            ca.descend();
            cb.descend();
        };
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn ikey_is_order_preserving_on_prefixes(a in proptest::collection::vec(any::<u8>(), 0..8),
                                            b in proptest::collection::vec(any::<u8>(), 0..8)) {
        // For keys ≤ 8 bytes, (ikey, len) comparison == byte comparison.
        let ord = (ikey_of(&a), a.len()).cmp(&(ikey_of(&b), b.len()));
        prop_assert_eq!(ord, a.cmp(&b));
    }
}

// ---------------------------------------------------------------------
// Zipfian stays in range
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn zipf_indices_in_range(n in 1u64..5_000, seed in any::<u64>()) {
        use rand::SeedableRng;
        let z = incll_ycsb::ScrambledZipfian::new(n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert!(z.next_index(&mut rng) < n);
        }
    }
}

// ---------------------------------------------------------------------
// Tree vs model under random op tapes (single-threaded)
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Op {
    Put(u8, u64),
    Remove(u8),
    Get(u8),
    Advance,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (any::<u8>(), any::<u64>()).prop_map(|(k, v)| Op::Put(k, v)),
        2 => any::<u8>().prop_map(Op::Remove),
        2 => any::<u8>().prop_map(Op::Get),
        1 => Just(Op::Advance),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    /// The durable tree agrees with a BTreeMap across epoch boundaries.
    #[test]
    fn durable_tree_matches_model(ops in proptest::collection::vec(op_strategy(), 1..300)) {
        let arena = PArena::builder().capacity_bytes(32 << 20).build().unwrap();
        superblock::format(&arena);
        let tree = DurableMasstree::create(&arena, DurableConfig {
            threads: 1,
            log_bytes_per_thread: 1 << 20,
            incll_enabled: true,
        }).unwrap();
        let ctx = tree.thread_ctx(0);
        let mut model: BTreeMap<u8, u64> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Put(k, v) => {
                    prop_assert_eq!(tree.put(&ctx, &[k], v), model.insert(k, v));
                }
                Op::Remove(k) => {
                    prop_assert_eq!(tree.remove(&ctx, &[k]), model.remove(&k).is_some());
                }
                Op::Get(k) => {
                    prop_assert_eq!(tree.get(&ctx, &[k]), model.get(&k).copied());
                }
                Op::Advance => {
                    tree.epoch_manager().advance();
                }
            }
        }
        let mut scanned = Vec::new();
        tree.scan(&ctx, b"", usize::MAX, &mut |k, v| scanned.push((k[0], v)));
        let expect: Vec<(u8, u64)> = model.into_iter().collect();
        prop_assert_eq!(scanned, expect);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// Crash consistency as a property: any op tape, any crash seed —
    /// recovery lands exactly on the checkpoint.
    #[test]
    fn crash_recovers_to_checkpoint(
        committed in proptest::collection::vec(op_strategy(), 0..120),
        doomed in proptest::collection::vec(op_strategy(), 1..120),
        crash_seed in any::<u64>(),
    ) {
        let arena = PArena::builder()
            .capacity_bytes(32 << 20)
            .tracked(true)
            .build()
            .unwrap();
        superblock::format(&arena);
        let config = DurableConfig {
            threads: 1,
            log_bytes_per_thread: 1 << 20,
            incll_enabled: true,
        };
        let tree = DurableMasstree::create(&arena, config.clone()).unwrap();
        let mut model: BTreeMap<u8, u64> = BTreeMap::new();
        {
            let ctx = tree.thread_ctx(0);
            for op in committed {
                match op {
                    Op::Put(k, v) => { tree.put(&ctx, &[k], v); model.insert(k, v); }
                    Op::Remove(k) => { tree.remove(&ctx, &[k]); model.remove(&k); }
                    Op::Get(k) => { tree.get(&ctx, &[k]); }
                    Op::Advance => { tree.epoch_manager().advance(); }
                }
            }
            tree.epoch_manager().advance(); // the checkpoint
            for op in doomed {
                match op {
                    Op::Put(k, v) => { tree.put(&ctx, &[k], v); }
                    Op::Remove(k) => { tree.remove(&ctx, &[k]); }
                    Op::Get(k) => { tree.get(&ctx, &[k]); }
                    Op::Advance => {} // keep the doomed epoch open
                }
            }
        }
        drop(tree);
        arena.crash_seeded(crash_seed);
        let (tree, _) = DurableMasstree::open(&arena, config).unwrap();
        let ctx = tree.thread_ctx(0);
        let mut scanned = Vec::new();
        tree.scan(&ctx, b"", usize::MAX, &mut |k, v| scanned.push((k[0], v)));
        let expect: Vec<(u8, u64)> = model.into_iter().collect();
        prop_assert_eq!(scanned, expect);
    }
}
