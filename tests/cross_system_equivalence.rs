//! All three systems (MT, MT+, INCLL) and a reference `BTreeMap` must
//! agree on every operation result for identical operation tapes — the
//! durability machinery must be semantically invisible.

use std::collections::BTreeMap;

use incll_repro::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[derive(Debug, Clone)]
enum TapeOp {
    Put(Vec<u8>, u64),
    Get(Vec<u8>),
    Remove(Vec<u8>),
    Scan(Vec<u8>, usize),
}

fn random_tape(seed: u64, len: usize) -> Vec<TapeOp> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            let klen = rng.gen_range(0..24);
            let key: Vec<u8> = (0..klen).map(|_| rng.gen_range(b'a'..=b'd')).collect();
            match rng.gen_range(0..10) {
                0..=4 => TapeOp::Put(key, rng.gen()),
                5..=6 => TapeOp::Get(key),
                7..=8 => TapeOp::Remove(key),
                _ => TapeOp::Scan(key, rng.gen_range(1..20)),
            }
        })
        .collect()
}

/// Applies the tape, returning one observation per op.
fn observe<T, C>(
    tree: &T,
    ctx: &C,
    tape: &[TapeOp],
    put: impl Fn(&T, &C, &[u8], u64) -> Option<u64>,
    get: impl Fn(&T, &C, &[u8]) -> Option<u64>,
    remove: impl Fn(&T, &C, &[u8]) -> bool,
    scan: impl Fn(&T, &C, &[u8], usize) -> Vec<(Vec<u8>, u64)>,
) -> Vec<String> {
    tape.iter()
        .map(|op| match op {
            TapeOp::Put(k, v) => format!("{:?}", put(tree, ctx, k, *v)),
            TapeOp::Get(k) => format!("{:?}", get(tree, ctx, k)),
            TapeOp::Remove(k) => format!("{:?}", remove(tree, ctx, k)),
            TapeOp::Scan(k, n) => format!("{:?}", scan(tree, ctx, k, *n)),
        })
        .collect()
}

fn model_observe(tape: &[TapeOp]) -> Vec<String> {
    let mut m: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
    tape.iter()
        .map(|op| match op {
            TapeOp::Put(k, v) => format!("{:?}", m.insert(k.clone(), *v)),
            TapeOp::Get(k) => format!("{:?}", m.get(k).copied()),
            TapeOp::Remove(k) => format!("{:?}", m.remove(k).is_some()),
            TapeOp::Scan(k, n) => {
                let hits: Vec<(Vec<u8>, u64)> = m
                    .range(k.clone()..)
                    .take(*n)
                    .map(|(k, v)| (k.clone(), *v))
                    .collect();
                format!("{hits:?}")
            }
        })
        .collect()
}

fn masstree_observe(tree: &Masstree, tape: &[TapeOp]) -> Vec<String> {
    let ctx = tree.thread_ctx(0);
    observe(
        tree,
        &ctx,
        tape,
        |t, c, k, v| t.put(c, k, v),
        |t, c, k| t.get(c, k),
        |t, c, k| t.remove(c, k),
        |t, c, k, n| {
            let mut out = Vec::new();
            t.scan(c, k, n, &mut |k, v| out.push((k.to_vec(), v)));
            out
        },
    )
}

#[test]
fn four_implementations_agree() {
    for seed in 0..6u64 {
        let tape = random_tape(seed, 4_000);
        let expect = model_observe(&tape);

        // MT
        {
            let arena = PArena::builder().capacity_bytes(1 << 20).build().unwrap();
            let mgr = EpochManager::new(arena, EpochOptions::transient());
            let tree = Masstree::new(mgr, TransientAlloc::new(AllocMode::Global, 1, None));
            assert_eq!(masstree_observe(&tree, &tape), expect, "MT seed {seed}");
        }
        // MT+
        {
            let pool = PArena::builder().capacity_bytes(32 << 20).build().unwrap();
            let mgr = EpochManager::new(pool.clone(), EpochOptions::transient());
            let tree = Masstree::new(mgr, TransientAlloc::new(AllocMode::Pool, 1, Some(pool)));
            assert_eq!(masstree_observe(&tree, &tape), expect, "MT+ seed {seed}");
        }
        // INCLL (with periodic checkpoints interleaved)
        {
            let arena = PArena::builder().capacity_bytes(64 << 20).build().unwrap();
            superblock::format(&arena);
            let tree = DurableMasstree::create(
                &arena,
                DurableConfig {
                    threads: 1,
                    log_bytes_per_thread: 1 << 20,
                    incll_enabled: true,
                },
            )
            .unwrap();
            let ctx = tree.thread_ctx(0);
            let got: Vec<String> = tape
                .iter()
                .enumerate()
                .map(|(i, op)| {
                    if i % 500 == 499 {
                        tree.epoch_manager().advance();
                    }
                    match op {
                        TapeOp::Put(k, v) => format!("{:?}", tree.put(&ctx, k, *v)),
                        TapeOp::Get(k) => format!("{:?}", tree.get(&ctx, k)),
                        TapeOp::Remove(k) => format!("{:?}", tree.remove(&ctx, k)),
                        TapeOp::Scan(k, n) => {
                            let mut out = Vec::new();
                            tree.scan(&ctx, k, *n, &mut |k, v| out.push((k.to_vec(), v)));
                            format!("{out:?}")
                        }
                    }
                })
                .collect();
            assert_eq!(got, expect, "INCLL seed {seed}");
        }
    }
}

#[test]
fn logging_mode_agrees_too() {
    let tape = random_tape(99, 3_000);
    let expect = model_observe(&tape);
    let arena = PArena::builder().capacity_bytes(64 << 20).build().unwrap();
    superblock::format(&arena);
    let tree = DurableMasstree::create(
        &arena,
        DurableConfig {
            threads: 1,
            log_bytes_per_thread: 4 << 20,
            incll_enabled: false, // LOGGING ablation
        },
    )
    .unwrap();
    let ctx = tree.thread_ctx(0);
    let got: Vec<String> = tape
        .iter()
        .enumerate()
        .map(|(i, op)| {
            if i % 300 == 299 {
                tree.epoch_manager().advance();
            }
            match op {
                TapeOp::Put(k, v) => format!("{:?}", tree.put(&ctx, k, *v)),
                TapeOp::Get(k) => format!("{:?}", tree.get(&ctx, k)),
                TapeOp::Remove(k) => format!("{:?}", tree.remove(&ctx, k)),
                TapeOp::Scan(k, n) => {
                    let mut out = Vec::new();
                    tree.scan(&ctx, k, *n, &mut |k, v| out.push((k.to_vec(), v)));
                    format!("{out:?}")
                }
            }
        })
        .collect();
    assert_eq!(got, expect);
}
