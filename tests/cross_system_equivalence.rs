//! All three systems (MT, MT+, INCLL-behind-`Store`) and a reference
//! `BTreeMap` must agree on every operation result for identical
//! operation tapes — the durability machinery must be semantically
//! invisible. A second tape checks byte-slice values against the model.

use std::collections::BTreeMap;

use incll_repro::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[derive(Debug, Clone)]
enum TapeOp {
    Put(Vec<u8>, u64),
    Get(Vec<u8>),
    Remove(Vec<u8>),
    Scan(Vec<u8>, usize),
}

fn random_tape(seed: u64, len: usize) -> Vec<TapeOp> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            let klen = rng.gen_range(0..24);
            let key: Vec<u8> = (0..klen).map(|_| rng.gen_range(b'a'..=b'd')).collect();
            match rng.gen_range(0..10) {
                0..=4 => TapeOp::Put(key, rng.gen()),
                5..=6 => TapeOp::Get(key),
                7..=8 => TapeOp::Remove(key),
                _ => TapeOp::Scan(key, rng.gen_range(1..20)),
            }
        })
        .collect()
}

fn model_observe(tape: &[TapeOp]) -> Vec<String> {
    let mut m: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
    tape.iter()
        .map(|op| match op {
            TapeOp::Put(k, v) => format!("{:?}", m.insert(k.clone(), *v)),
            TapeOp::Get(k) => format!("{:?}", m.get(k).copied()),
            TapeOp::Remove(k) => format!("{:?}", m.remove(k).is_some()),
            TapeOp::Scan(k, n) => {
                let hits: Vec<(Vec<u8>, u64)> = m
                    .range(k.clone()..)
                    .take(*n)
                    .map(|(k, v)| (k.clone(), *v))
                    .collect();
                format!("{hits:?}")
            }
        })
        .collect()
}

fn masstree_observe(tree: &Masstree, tape: &[TapeOp]) -> Vec<String> {
    let ctx = tree.bench_ctx(0);
    tape.iter()
        .map(|op| match op {
            TapeOp::Put(k, v) => format!("{:?}", tree.put(&ctx, k, *v)),
            TapeOp::Get(k) => format!("{:?}", tree.get(&ctx, k)),
            TapeOp::Remove(k) => format!("{:?}", tree.remove(&ctx, k)),
            TapeOp::Scan(k, n) => {
                let mut out = Vec::new();
                tree.scan(&ctx, k, *n, &mut |k, v| out.push((k.to_vec(), v)));
                format!("{out:?}")
            }
        })
        .collect()
}

/// Observes the tape through the `Store` facade's u64 convenience forms,
/// with periodic checkpoints interleaved.
fn store_observe(store: &Store, tape: &[TapeOp], checkpoint_every: usize) -> Vec<String> {
    let sess = store.session().unwrap();
    tape.iter()
        .enumerate()
        .map(|(i, op)| {
            if i % checkpoint_every == checkpoint_every - 1 {
                store.checkpoint();
            }
            match op {
                TapeOp::Put(k, v) => format!("{:?}", store.put_u64(&sess, k, *v)),
                TapeOp::Get(k) => format!("{:?}", store.get_u64(&sess, k)),
                TapeOp::Remove(k) => format!("{:?}", store.remove(&sess, k)),
                TapeOp::Scan(k, n) => {
                    let mut out = Vec::new();
                    store.scan(&sess, k, *n, &mut |k, v| {
                        out.push((k.to_vec(), u64::from_le_bytes(v[..8].try_into().unwrap())))
                    });
                    format!("{out:?}")
                }
            }
        })
        .collect()
}

#[test]
fn four_implementations_agree() {
    for seed in 0..6u64 {
        let tape = random_tape(seed, 4_000);
        let expect = model_observe(&tape);

        // MT
        {
            let arena = PArena::builder().capacity_bytes(1 << 20).build().unwrap();
            let mgr = EpochManager::new(arena, EpochOptions::transient());
            let tree = Masstree::new(mgr, TransientAlloc::new(AllocMode::Global, 1, None));
            assert_eq!(masstree_observe(&tree, &tape), expect, "MT seed {seed}");
        }
        // MT+
        {
            let pool = PArena::builder().capacity_bytes(32 << 20).build().unwrap();
            let mgr = EpochManager::new(pool.clone(), EpochOptions::transient());
            let tree = Masstree::new(mgr, TransientAlloc::new(AllocMode::Pool, 1, Some(pool)));
            assert_eq!(masstree_observe(&tree, &tape), expect, "MT+ seed {seed}");
        }
        // INCLL behind the Store facade (with periodic checkpoints), at
        // several shard counts — routing and merged scans must be
        // semantically invisible too.
        for shards in [1usize, 4] {
            let arena = PArena::builder().capacity_bytes(64 << 20).build().unwrap();
            let (store, _) = Store::open(
                &arena,
                Options::new()
                    .threads(1)
                    .log_bytes_per_thread(1 << 20)
                    .shards(shards),
            )
            .unwrap();
            assert_eq!(
                store_observe(&store, &tape, 500),
                expect,
                "INCLL seed {seed} shards {shards}"
            );
        }
    }
}

#[test]
fn logging_mode_agrees_too() {
    let tape = random_tape(99, 3_000);
    let expect = model_observe(&tape);
    let arena = PArena::builder().capacity_bytes(64 << 20).build().unwrap();
    let (store, _) = Store::open(
        &arena,
        Options::new()
            .threads(1)
            .log_bytes_per_thread(4 << 20)
            .incll(false), // LOGGING ablation
    )
    .unwrap();
    assert_eq!(store_observe(&store, &tape, 300), expect);
}

#[test]
fn byte_values_agree_with_model() {
    // The byte-slice twin: random variable-length values against a
    // `BTreeMap<Vec<u8>, Vec<u8>>`, through puts/gets/removes/iterators.
    let mut rng = StdRng::seed_from_u64(12);
    let arena = PArena::builder().capacity_bytes(64 << 20).build().unwrap();
    let (store, _) = Store::open(
        &arena,
        Options::new().threads(1).log_bytes_per_thread(1 << 20),
    )
    .unwrap();
    let sess = store.session().unwrap();
    let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    for step in 0..6_000 {
        if step % 500 == 499 {
            store.checkpoint();
        }
        let klen = rng.gen_range(0..24);
        let key: Vec<u8> = (0..klen).map(|_| rng.gen_range(b'a'..=b'd')).collect();
        match rng.gen_range(0..10) {
            0..=4 => {
                let len = rng.gen_range(0..400usize);
                let v: Vec<u8> = (0..len).map(|_| rng.gen_range(0..=255u64) as u8).collect();
                assert_eq!(
                    store.put(&sess, &key, &v).unwrap(),
                    model.insert(key, v),
                    "step {step}"
                );
            }
            5..=6 => {
                assert_eq!(
                    store.get(&sess, &key),
                    model.get(&key).cloned(),
                    "step {step}"
                );
            }
            7..=8 => {
                assert_eq!(
                    store.remove(&sess, &key),
                    model.remove(&key).is_some(),
                    "step {step}"
                );
            }
            _ => {}
        }
    }
    let got: Vec<(Vec<u8>, Vec<u8>)> = store.iter(&sess).collect();
    let expect: Vec<(Vec<u8>, Vec<u8>)> = model.into_iter().collect();
    assert_eq!(got, expect);
}
