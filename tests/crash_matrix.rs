//! Deterministic crash-injection torture matrix for **parallel per-shard
//! recovery** and **per-shard allocator arenas**.
//!
//! Sweeps shards {1, 2, 4, 8} × recovery workers {1, 2, 4} × crash points
//! {mid-replay, mid-carve, mid-compaction}. Every cell drives the same
//! deterministic history (per-shard staggered checkpoints, a
//! crash-point-specific doomed phase, a seeded PCSO crash), recovers with
//! the cell's worker count, and asserts:
//!
//! * every shard lands **exactly** on its own recovered epoch (tracked by
//!   a per-shard epoch mirror, off-by-one intolerant);
//! * the surviving contents equal the per-shard committed model;
//! * the report attributes replay per shard and names the worker count.
//!
//! A separate battery proves **parallel ≡ sequential**: the identical
//! history is run twice — byte-identical up to the final crash — then
//! recovered once with 1 worker and once with 4, and the two arenas must
//! agree on every byte (a full-arena digest), not merely on visible
//! contents.

use std::collections::{BTreeMap, BTreeSet};

use incll_repro::prelude::*;

const SHARD_SWEEP: &[usize] = &[1, 2, 4, 8];
const WORKER_SWEEP: &[usize] = &[1, 2, 4];

/// Where in the lifecycle the (final) crash lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CrashPoint {
    /// Crash, recover (replay runs, nothing checkpoints), then crash
    /// again mid-recovery-epoch with no new work: the second recovery
    /// must re-replay to the same state (§4.3 idempotence), per shard.
    Replay,
    /// The doomed epoch allocates values in size classes never touched
    /// before, forcing fresh slab carves on every shard's own frontier;
    /// the crash must un-carve them (v4 watermark rollback).
    Carve,
    /// A first crash leaves failed-epoch debris; a completed checkpoint
    /// then runs the compaction sweep (eager lazy-recovery + list
    /// re-tagging + prune) before the doomed phase and final crash.
    Compaction,
}

const CRASH_POINTS: &[CrashPoint] = &[
    CrashPoint::Replay,
    CrashPoint::Carve,
    CrashPoint::Compaction,
];

fn tracked() -> PArena {
    PArena::builder()
        .capacity_bytes(32 << 20)
        .tracked(true)
        .build()
        .unwrap()
}

fn options(shards: usize, workers: usize) -> Options {
    options_g(shards, workers, 0)
}

fn options_g(shards: usize, workers: usize, gran: usize) -> Options {
    Options::new()
        .threads(1)
        .log_bytes_per_thread(1 << 20)
        .shards(shards)
        .recovery_threads(workers)
        .persistence_granularity(gran)
}

/// Deterministic variable-length value: spans the small/medium classes.
fn bval(i: u64) -> Vec<u8> {
    let len = ((i * 37) % 347) as usize;
    (0..len).map(|j| (i as u8).wrapping_add(j as u8)).collect()
}

/// A value in a size class the staggered phases never touch (600 → 768,
/// 1500 → 2048, 3500 → 4096): allocating one forces a fresh slab carve.
fn carve_val(i: u64) -> Vec<u8> {
    let len = [600usize, 1500, 3500][(i % 3) as usize];
    vec![i as u8; len]
}

/// Copies `working`'s mappings for every key routed to `shard` into
/// `expect` (insertions and removals): the model image of "shard `shard`
/// just completed a checkpoint".
fn commit_shard(
    expect: &mut BTreeMap<Vec<u8>, Vec<u8>>,
    working: &BTreeMap<Vec<u8>, Vec<u8>>,
    store: &Store,
    shard: usize,
) {
    let keys: BTreeSet<Vec<u8>> = expect.keys().chain(working.keys()).cloned().collect();
    for k in keys {
        if store.shard_of(&k) == shard {
            match working.get(&k) {
                Some(v) => {
                    expect.insert(k, v.clone());
                }
                None => {
                    expect.remove(&k);
                }
            }
        }
    }
}

/// FNV-1a over every byte of the arena (u64-stride): two arenas with equal
/// digests hold identical contents.
fn arena_digest(arena: &PArena) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut buf = [0u8; 4096];
    let cap = arena.capacity() as u64;
    let mut off = 0u64;
    while off < cap {
        let n = ((cap - off) as usize).min(4096);
        arena.pread_bytes(off, &mut buf[..n]);
        for w in buf[..n].chunks(8) {
            let mut word = [0u8; 8];
            word[..w.len()].copy_from_slice(w);
            h ^= u64::from_le_bytes(word);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        off += n as u64;
    }
    h
}

/// What one matrix cell produced, for cross-cell comparison.
struct CellOutcome {
    expect: BTreeMap<Vec<u8>, Vec<u8>>,
    /// Per-shard failed/recovered epochs from the final report.
    per_shard: Vec<(u64, u64, u64)>, // (failed, recovered, entries)
    digest: u64,
}

/// Drives the deterministic history for one cell and recovers with
/// `final_workers`. Intermediate recoveries (the extra crash/reopen
/// rounds of `Replay` / `Compaction`) use `mid_workers`, so the
/// byte-equivalence battery can hold everything before the final crash
/// identical while varying only the final recovery.
fn run_cell(
    shards: usize,
    point: CrashPoint,
    mid_workers: usize,
    final_workers: usize,
    gran: usize,
) -> CellOutcome {
    let arena = tracked();
    // Per-shard epoch mirror: create seals the mkfs epoch and leaves
    // every shard executing at epoch 2; every advance (+1), every
    // crash/reopen (+1, restart past the failure).
    let mut epochs = vec![2u64; shards];
    let mut working: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    let mut expect: BTreeMap<Vec<u8>, Vec<u8>>;

    let (store, r) = Store::open(&arena, options_g(shards, mid_workers, gran)).unwrap();
    assert!(r.created);
    {
        let sess = store.session().unwrap();
        // Committed base: keys 0..80, then the common barrier.
        for i in 0..80u64 {
            store.put(&sess, &i.to_be_bytes(), &bval(i)).unwrap();
            working.insert(i.to_be_bytes().to_vec(), bval(i));
        }
        store.checkpoint();
        for e in &mut epochs {
            *e += 1;
        }
        expect = working.clone();

        // Staggered per-shard boundaries: two rounds of churn; shard s
        // checkpoints in the first (s % 3) rounds only, so the per-shard
        // boundaries drift apart deterministically.
        for round in 0..2u64 {
            for i in 0..40u64 {
                let k = 1000 + round * 100 + i;
                store.put(&sess, &k.to_be_bytes(), &bval(k)).unwrap();
                working.insert(k.to_be_bytes().to_vec(), bval(k));
            }
            for i in 0..10u64 {
                let k = (round * 13 + i * 3) % 80;
                store.remove(&sess, &k.to_be_bytes());
                working.remove(k.to_be_bytes().as_slice());
            }
            for (s, e) in epochs.iter_mut().enumerate() {
                if round < (s % 3) as u64 {
                    store.checkpoint_shard(s);
                    *e += 1;
                    commit_shard(&mut expect, &working, &store, s);
                }
            }
        }
    }

    // Crash-point-specific tail. Every branch ends with the store dropped
    // and the *final* seeded crash taken.
    match point {
        CrashPoint::Carve => {
            // Doomed phase forcing fresh slab carves on every shard: big
            // values in classes no earlier phase touched.
            let sess = store.session().unwrap();
            for i in 0..30u64 {
                let k = 5000 + i;
                store.put(&sess, &k.to_be_bytes(), &carve_val(i)).unwrap();
            }
            drop(sess);
            drop(store);
            arena.crash_seeded(0xC0FFEE ^ shards as u64);
        }
        CrashPoint::Replay => {
            // Doomed churn, crash, one *completed* recovery (replay runs,
            // nothing checkpoints), then an immediate second crash: the
            // final recovery must re-replay to the identical state.
            let sess = store.session().unwrap();
            for i in 0..40u64 {
                let k = 2000 + i;
                store.put(&sess, &k.to_be_bytes(), &bval(k)).unwrap();
            }
            drop(sess);
            drop(store);
            arena.crash_seeded(0xA11CE ^ shards as u64);
            let (store2, r2) = Store::open(&arena, options_g(shards, mid_workers, gran)).unwrap();
            assert!(!r2.created);
            for e in &mut epochs {
                *e += 1;
            }
            drop(store2);
            arena.crash_seeded(0xB0B ^ shards as u64);
        }
        CrashPoint::Compaction => {
            // First crash leaves failed debris; a completed checkpoint
            // then compacts (sweep + re-tag + prune) before the doomed
            // phase and the final crash.
            drop(store);
            arena.crash_seeded(0xD00D ^ shards as u64);
            let (store2, r2) = Store::open(&arena, options_g(shards, mid_workers, gran)).unwrap();
            assert!(!r2.created);
            for e in &mut epochs {
                *e += 1;
            }
            // The crash rolled the un-checkpointed staggered churn back:
            // the live state is exactly the per-shard committed model.
            working = expect.clone();
            {
                let sess = store2.session().unwrap();
                for i in 0..30u64 {
                    let k = 3000 + i;
                    store2.put(&sess, &k.to_be_bytes(), &bval(k)).unwrap();
                    working.insert(k.to_be_bytes().to_vec(), bval(k));
                }
                store2.checkpoint(); // the compaction pass runs here
                for e in &mut epochs {
                    *e += 1;
                }
                expect = working.clone();
                for i in 0..20u64 {
                    let k = 4000 + i;
                    store2.put(&sess, &k.to_be_bytes(), &bval(k)).unwrap();
                }
            }
            drop(store2);
            arena.crash_seeded(0xFACADE ^ shards as u64);
        }
    }

    // The measured recovery: the cell's worker count.
    let (store, report) = Store::open(&arena, options_g(shards, final_workers, gran)).unwrap();
    assert!(!report.created);
    assert_eq!(
        report.parallel_workers,
        final_workers.min(shards),
        "workers are clamped to the shard count"
    );
    assert_eq!(report.per_shard.len(), shards);
    for (s, rep) in report.per_shard.iter().enumerate() {
        assert_eq!(rep.shard, s);
        assert_eq!(
            rep.failed_epoch, epochs[s],
            "{point:?} shards={shards} workers={final_workers}: shard {s} \
             must fail at exactly its own epoch"
        );
        assert_eq!(rep.recovered_epoch, rep.failed_epoch + 1);
    }
    assert_eq!(
        report.replayed_entries,
        report
            .per_shard
            .iter()
            .map(|s| s.replayed_entries)
            .sum::<u64>()
    );
    if point == CrashPoint::Compaction {
        // The completed checkpoint compacted shard 0's set: only epochs
        // at/after the compacting boundary may remain (plus this crash).
        assert!(
            report.failed_epochs.len() <= 2,
            "{point:?}: compaction must have pruned shard 0's set, got {:?}",
            report.failed_epochs
        );
    }

    // Contents: every shard exactly at its own committed boundary.
    {
        let sess = store.session().unwrap();
        let got: Vec<(Vec<u8>, Vec<u8>)> = store.iter(&sess).collect();
        let want: Vec<(Vec<u8>, Vec<u8>)> = expect.clone().into_iter().collect();
        assert_eq!(
            got, want,
            "{point:?} shards={shards} workers={final_workers}: contents \
             must match the per-shard committed model"
        );
    }
    drop(store);
    let digest = arena_digest(&arena);

    CellOutcome {
        expect,
        per_shard: report
            .per_shard
            .iter()
            .map(|s| (s.failed_epoch, s.recovered_epoch, s.replayed_entries))
            .collect(),
        digest,
    }
}

/// The full matrix, one crash point per test so failures name their cell.
fn run_matrix(point: CrashPoint) {
    for &shards in SHARD_SWEEP {
        // All worker counts of one (shards, point) cell must agree on
        // everything observable — the matrix's sequential ≡ parallel
        // claim at the model level (the byte-level twin is below).
        let mut baseline: Option<CellOutcome> = None;
        for &workers in WORKER_SWEEP {
            let out = run_cell(shards, point, 1, workers, 0);
            if let Some(base) = &baseline {
                assert_eq!(
                    base.expect, out.expect,
                    "{point:?} shards={shards}: model must not depend on workers"
                );
                assert_eq!(
                    base.per_shard, out.per_shard,
                    "{point:?} shards={shards} workers={workers}: per-shard \
                     epochs/replay must not depend on workers"
                );
                assert_eq!(
                    base.digest, out.digest,
                    "{point:?} shards={shards} workers={workers}: recovered \
                     arenas must be byte-identical"
                );
            } else {
                baseline = Some(out);
            }
        }
    }
}

#[test]
fn crash_matrix_mid_carve() {
    run_matrix(CrashPoint::Carve);
}

#[test]
fn crash_matrix_mid_replay() {
    run_matrix(CrashPoint::Replay);
}

#[test]
fn crash_matrix_mid_compaction() {
    run_matrix(CrashPoint::Compaction);
}

/// What one batch-crash cell produced, for cross-worker comparison.
struct BatchCell {
    got: Vec<(Vec<u8>, Vec<u8>)>,
    redone: u64,
    dropped: u64,
    digest: u64,
}

/// Deterministic history ending in a crash with one cross-shard batch in
/// flight: staged (intents durable, **no** commit record) when `commit`
/// is false, fully committed (commit record durable, apply raced the
/// crash arbitrarily — here it completed) when true. Recovers with
/// `final_workers` and reports contents, batch-resolution counters, and
/// the full-arena digest.
fn run_batch_cell(shards: usize, commit: bool, final_workers: usize) -> BatchCell {
    run_batch_cell_g(shards, commit, final_workers, 0)
}

fn run_batch_cell_g(shards: usize, commit: bool, final_workers: usize, gran: usize) -> BatchCell {
    let arena = tracked();
    let mut expect: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();

    let (store, r) = Store::open(&arena, options_g(shards, 1, gran)).unwrap();
    assert!(r.created);
    {
        let sess = store.session().unwrap();
        for i in 0..40u64 {
            store.put(&sess, &i.to_be_bytes(), &bval(i)).unwrap();
            expect.insert(i.to_be_bytes().to_vec(), bval(i));
        }
        store.checkpoint();

        // The in-doubt batch: eight puts plus a delete of a committed
        // key, spread across shards by the ordinary router.
        let keys: Vec<Vec<u8>> = (0..8u64)
            .map(|i| format!("batch/{i:02}").into_bytes())
            .collect();
        if shards > 1 {
            let touched: BTreeSet<usize> = keys.iter().map(|k| store.shard_of(k)).collect();
            assert!(
                touched.len() >= 2,
                "the battery needs a genuinely cross-shard batch"
            );
        }
        let mut batch = sess.batch();
        for (i, k) in keys.iter().enumerate() {
            batch.put(k, &bval(9000 + i as u64)).unwrap();
        }
        batch.delete(&3u64.to_be_bytes()).unwrap();
        let id = if commit {
            batch.commit().unwrap()
        } else {
            batch.stage_without_commit().unwrap()
        };
        if shards > 1 {
            assert!(id > 0, "a cross-shard batch must take the slow path");
        }
        if commit && shards > 1 {
            // Committed cross-shard batches survive the crash: recovery
            // redoes them from their durable intents.
            for (i, k) in keys.iter().enumerate() {
                expect.insert(k.clone(), bval(9000 + i as u64));
            }
            expect.remove(3u64.to_be_bytes().as_slice());
        }
        // `commit && shards == 1` is the fast path: same-epoch atomicity
        // with no intents, so the pre-boundary crash rolls the whole
        // batch back — exactly like a plain un-checkpointed put.
    }
    drop(store);
    arena.crash_seeded(0xBA7C4 ^ shards as u64 ^ u64::from(commit));

    let (store, report) = Store::open(&arena, options_g(shards, final_workers, gran)).unwrap();
    assert!(!report.created);
    let redone: u64 = report.per_shard.iter().map(|s| s.batches_redone).sum();
    let dropped: u64 = report.per_shard.iter().map(|s| s.batches_dropped).sum();
    let got: Vec<(Vec<u8>, Vec<u8>)> = {
        let sess = store.session().unwrap();
        store.iter(&sess).collect()
    };
    let want: Vec<(Vec<u8>, Vec<u8>)> = expect.into_iter().collect();
    assert_eq!(
        got, want,
        "commit={commit} shards={shards} workers={final_workers}: the batch \
         must be all-present (committed) or all-absent (staged), never torn"
    );
    drop(store);
    BatchCell {
        got,
        redone,
        dropped,
        digest: arena_digest(&arena),
    }
}

#[test]
fn mid_batch_crash_drops_the_batch_on_every_shard_identically() {
    for &shards in &[2usize, 4, 8] {
        let mut baseline: Option<BatchCell> = None;
        for &workers in WORKER_SWEEP {
            let out = run_batch_cell(shards, false, workers);
            assert_eq!(out.redone, 0, "shards={shards}: nothing was committed");
            assert!(
                out.dropped >= 2,
                "shards={shards}: every intent-holding shard must report the \
                 staged batch dropped, got {}",
                out.dropped
            );
            if let Some(base) = &baseline {
                assert_eq!(base.got, out.got);
                assert_eq!((base.redone, base.dropped), (out.redone, out.dropped));
                assert_eq!(
                    base.digest, out.digest,
                    "shards={shards} workers={workers}: dropping an in-doubt \
                     batch must be byte-identical at every worker count"
                );
            } else {
                baseline = Some(out);
            }
        }
    }
}

#[test]
fn post_commit_crash_redoes_the_batch_on_every_shard_identically() {
    for &shards in &[2usize, 4, 8] {
        let mut baseline: Option<BatchCell> = None;
        for &workers in WORKER_SWEEP {
            let out = run_batch_cell(shards, true, workers);
            assert_eq!(out.dropped, 0, "shards={shards}: the batch committed");
            assert!(
                out.redone >= 2,
                "shards={shards}: every intent-holding shard must redo the \
                 committed batch, got {}",
                out.redone
            );
            if let Some(base) = &baseline {
                assert_eq!(base.got, out.got);
                assert_eq!((base.redone, base.dropped), (out.redone, out.dropped));
                assert_eq!(
                    base.digest, out.digest,
                    "shards={shards} workers={workers}: redoing a committed \
                     batch must be byte-identical at every worker count"
                );
            } else {
                baseline = Some(out);
            }
        }
    }
}

#[test]
fn single_shard_batches_keep_the_fast_path_crash_shape() {
    // shards(1) batches never write batch media: a pre-boundary crash
    // rolls them back whole (same-epoch atomicity), and recovery has no
    // batches to resolve.
    for commit in [false, true] {
        let out = run_batch_cell(1, commit, 1);
        assert_eq!((out.redone, out.dropped), (0, 0));
        assert!(
            out.got.iter().all(|(k, _)| !k.starts_with(b"batch/")),
            "commit={commit}: an un-checkpointed fast-path batch rolls back"
        );
        assert!(out
            .got
            .iter()
            .any(|(k, _)| k == &3u64.to_be_bytes().to_vec()));
    }
}

#[test]
fn committed_batch_survives_a_second_crash_before_any_boundary() {
    // Redo is idempotent: crash again after a recovery that redid the
    // batch but before any shard checkpoints, and the second recovery
    // must land on the identical state.
    let shards = 4usize;
    let arena = tracked();
    let mut expect: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    {
        let (store, _) = Store::open(&arena, options(shards, 1)).unwrap();
        let sess = store.session().unwrap();
        for i in 0..40u64 {
            store.put(&sess, &i.to_be_bytes(), &bval(i)).unwrap();
            expect.insert(i.to_be_bytes().to_vec(), bval(i));
        }
        store.checkpoint();
        let mut batch = sess.batch();
        for i in 0..6u64 {
            let k = format!("twice/{i}");
            batch.put(k.as_bytes(), &bval(7000 + i)).unwrap();
            expect.insert(k.into_bytes(), bval(7000 + i));
        }
        assert!(batch.commit().unwrap() > 0);
    }
    arena.crash_seeded(0x2CE);
    let (store, r1) = Store::open(&arena, options(shards, 2)).unwrap();
    assert!(r1.per_shard.iter().map(|s| s.batches_redone).sum::<u64>() >= 2);
    drop(store); // no checkpoint: intents and commit record still live
    arena.crash_seeded(0x2CF);
    let (store, r2) = Store::open(&arena, options(shards, 4)).unwrap();
    assert!(
        r2.per_shard.iter().map(|s| s.batches_redone).sum::<u64>() >= 2,
        "the second recovery must redo the still-unretired batch again"
    );
    let sess = store.session().unwrap();
    let got: Vec<(Vec<u8>, Vec<u8>)> = store.iter(&sess).collect();
    let want: Vec<(Vec<u8>, Vec<u8>)> = expect.into_iter().collect();
    assert_eq!(got, want, "double-crash redo must be idempotent");
}

#[test]
fn recovered_store_stays_writable_and_durable_at_every_cell_shape() {
    // Liveness after the worst cell shapes: a recovered store must accept
    // new work, checkpoint it, and survive one more crash.
    for &shards in &[1usize, 8] {
        for &point in CRASH_POINTS {
            let arena = tracked();
            let mut epochs = vec![2u64; shards];
            {
                let (store, _) = Store::open(&arena, options(shards, 2)).unwrap();
                let sess = store.session().unwrap();
                for i in 0..40u64 {
                    store.put(&sess, &i.to_be_bytes(), &bval(i)).unwrap();
                }
                store.checkpoint();
                for e in &mut epochs {
                    *e += 1;
                }
                let sz = match point {
                    CrashPoint::Carve => 2000,
                    _ => 64,
                };
                store.put(&sess, b"doomed", &vec![9u8; sz]).unwrap();
            }
            arena.crash_seeded(7 ^ shards as u64);
            if point == CrashPoint::Replay {
                let (s2, _) = Store::open(&arena, options(shards, 4)).unwrap();
                drop(s2);
                for e in &mut epochs {
                    *e += 1;
                }
                arena.crash_seeded(8 ^ shards as u64);
            }
            let (store, _) = Store::open(&arena, options(shards, 4)).unwrap();
            {
                let sess = store.session().unwrap();
                assert_eq!(store.get(&sess, b"doomed"), None);
                store.put(&sess, b"after", b"alive").unwrap();
                store.checkpoint();
            }
            drop(store);
            arena.crash_seeded(9 ^ shards as u64);
            let (store, _) = Store::open(&arena, options(shards, 1)).unwrap();
            let sess = store.session().unwrap();
            assert_eq!(store.get(&sess, b"after").as_deref(), Some(&b"alive"[..]));
            assert_eq!(store.get(&sess, &0u64.to_be_bytes()), Some(bval(0)));
        }
    }
}

/// Regression: a store crashed **before any runtime checkpoint** must
/// still hand out fresh memory after recovery. The mkfs flush seals the
/// create epoch (`DurableMasstree::create` restarts every domain past
/// it), so the first failed epoch can never be the one whose carves and
/// free-list moves produced the root leaves — were it, allocator
/// recovery would un-carve them and post-recovery puts would recycle
/// live node memory (observed as a clobbered version word).
#[test]
fn puts_after_a_crash_with_no_prior_checkpoint_stay_sound() {
    for &shards in &[1usize, 4] {
        for &gran in &[0usize, 4096] {
            let arena = tracked();
            {
                let (store, _) = Store::open(&arena, options_g(shards, 2, gran)).unwrap();
                let sess = store.session().unwrap();
                for i in 0..40u64 {
                    store.put(&sess, &i.to_be_bytes(), &bval(i)).unwrap();
                }
                // No checkpoint: every put above dies with the epoch.
            }
            arena.crash_seeded(21 ^ shards as u64);
            let (store, _) = Store::open(&arena, options_g(shards, 2, gran)).unwrap();
            let sess = store.session().unwrap();
            for i in 0..40u64 {
                assert_eq!(
                    store.get(&sess, &i.to_be_bytes()),
                    None,
                    "shards={shards} gran={gran}: uncheckpointed put survived"
                );
            }
            // New work must land in fresh memory, not the rolled-back
            // tree's nodes.
            for i in 100..140u64 {
                store.put(&sess, &i.to_be_bytes(), &bval(i)).unwrap();
            }
            for i in 100..140u64 {
                assert_eq!(
                    store.get(&sess, &i.to_be_bytes()),
                    Some(bval(i)),
                    "shards={shards} gran={gran}: post-recovery put lost"
                );
            }
        }
    }
}

/// What one mid-extent-claim cell produced, for cross-worker comparison.
struct ClaimCell {
    got: Vec<(Vec<u8>, Vec<u8>)>,
    /// Raw extent-owner bytes (`0` free, `shard + 1` owned) after the
    /// final recovery.
    owners: Vec<u8>,
    /// Extents owned per shard after the final recovery.
    owned: Vec<usize>,
    per_shard: Vec<(u64, u64, u64)>, // (failed, recovered, entries)
    digest: u64,
}

/// Deterministic history ending in a crash **immediately after** shard 0
/// claims a second extent, inside an epoch that never checkpoints. The
/// claim's owner byte is durable before any frontier references the
/// extent, so recovery must keep the extent owned (it re-queues as
/// reserve) while rolling every doomed store back — identically at any
/// worker count.
fn run_claim_cell(shards: usize, final_workers: usize) -> ClaimCell {
    let arena = tracked();
    let mut expect: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();

    let (store, r) = Store::open(&arena, options(shards, 1)).unwrap();
    assert!(r.created);
    let pre_crash_owners: Vec<u8>;
    {
        let sess = store.session().unwrap();
        for i in 0..40u64 {
            store.put(&sess, &i.to_be_bytes(), &bval(i)).unwrap();
            expect.insert(i.to_be_bytes().to_vec(), bval(i));
        }
        // A hot working set routed entirely to shard 0.
        let hot: Vec<Vec<u8>> = (0..16u64)
            .map(|t| {
                (0u64..)
                    .map(|i| format!("claim{t}-{i}").into_bytes())
                    .find(|k| store.shard_of(k) == 0)
                    .unwrap()
            })
            .collect();
        for k in &hot {
            store.put(&sess, k, b"seed").unwrap();
            expect.insert(k.clone(), b"seed".to_vec());
        }
        store.checkpoint();

        // Doomed phase: overwrite the hot set with carve-class values
        // until shard 0's frontier spills into a freshly claimed extent,
        // then stop — the crash lands with the claim durable but every
        // store that motivated it doomed.
        let before = store.extent_stats().unwrap().owned_per_shard[0];
        let big = carve_val(2); // 3500 → the 4096 class
        let mut i = 0usize;
        loop {
            store.put(&sess, &hot[i % hot.len()], &big).unwrap();
            i += 1;
            if store.extent_stats().unwrap().owned_per_shard[0] > before {
                break;
            }
            assert!(i < 10_000, "shard 0 never claimed a second extent");
        }
        let stats = store.extent_stats().unwrap();
        pre_crash_owners = (0..stats.extent_count)
            .map(|e| incll_pmem::superblock::extent_owner(&arena, e))
            .collect();
    }
    drop(store);
    arena.crash_seeded(0xEC1A ^ shards as u64);

    let (store, report) = Store::open(&arena, options(shards, final_workers)).unwrap();
    assert!(!report.created);
    let stats = store.extent_stats().unwrap();
    let owners: Vec<u8> = (0..stats.extent_count)
        .map(|e| incll_pmem::superblock::extent_owner(&arena, e))
        .collect();
    assert_eq!(
        owners, pre_crash_owners,
        "shards={shards} workers={final_workers}: recovery must neither \
         release nor re-assign a durably claimed extent"
    );
    let got: Vec<(Vec<u8>, Vec<u8>)> = {
        let sess = store.session().unwrap();
        store.iter(&sess).collect()
    };
    let want: Vec<(Vec<u8>, Vec<u8>)> = expect.into_iter().collect();
    assert_eq!(
        got, want,
        "shards={shards} workers={final_workers}: every doomed store must \
         roll back even though the claim it forced survives"
    );
    drop(store);
    ClaimCell {
        got,
        owners,
        owned: stats.owned_per_shard,
        per_shard: report
            .per_shard
            .iter()
            .map(|s| (s.failed_epoch, s.recovered_epoch, s.replayed_entries))
            .collect(),
        digest: arena_digest(&arena),
    }
}

#[test]
fn crash_mid_extent_claim_resolves_identically_at_every_worker_count() {
    for &shards in &[2usize, 4] {
        let mut baseline: Option<ClaimCell> = None;
        for &workers in WORKER_SWEEP {
            let out = run_claim_cell(shards, workers);
            assert!(
                out.owned[0] >= 2,
                "shards={shards} workers={workers}: the claimed extent must \
                 survive recovery as shard 0's reserve, owned {:?}",
                out.owned
            );
            if let Some(base) = &baseline {
                assert_eq!(base.got, out.got);
                assert_eq!(
                    base.owners, out.owners,
                    "shards={shards} workers={workers}: the owner table must \
                     not depend on the worker count"
                );
                assert_eq!(base.owned, out.owned);
                assert_eq!(
                    base.per_shard, out.per_shard,
                    "shards={shards} workers={workers}: per-shard \
                     epochs/replay must not depend on workers"
                );
                assert_eq!(
                    base.digest, out.digest,
                    "shards={shards} workers={workers}: a mid-claim crash \
                     must recover byte-identically at every worker count"
                );
            } else {
                baseline = Some(out);
            }
        }
    }
}

#[test]
fn recovered_reserve_extent_is_reused_before_any_fresh_claim() {
    // After a mid-claim crash, the orphaned extent re-queues as reserve:
    // renewed pressure on the same shard must consume it without touching
    // the owner table.
    let shards = 2usize;
    let arena = tracked();
    let hot: Vec<Vec<u8>>;
    {
        let (store, _) = Store::open(&arena, options(shards, 1)).unwrap();
        let sess = store.session().unwrap();
        hot = (0..16u64)
            .map(|t| {
                (0u64..)
                    .map(|i| format!("reuse{t}-{i}").into_bytes())
                    .find(|k| store.shard_of(k) == 0)
                    .unwrap()
            })
            .collect();
        for k in &hot {
            store.put(&sess, k, b"seed").unwrap();
        }
        store.checkpoint();
        let before = store.extent_stats().unwrap().owned_per_shard[0];
        let big = carve_val(2);
        let mut i = 0usize;
        while store.extent_stats().unwrap().owned_per_shard[0] == before {
            store.put(&sess, &hot[i % hot.len()], &big).unwrap();
            i += 1;
            assert!(i < 10_000, "shard 0 never claimed a second extent");
        }
    }
    arena.crash_seeded(0xEC1B);

    let (store, _) = Store::open(&arena, options(shards, 2)).unwrap();
    let stats = store.extent_stats().unwrap();
    let owners: Vec<u8> = (0..stats.extent_count)
        .map(|e| incll_pmem::superblock::extent_owner(&arena, e))
        .collect();
    let sess = store.session().unwrap();
    // Burn through the reverted frontier and well into the reserve
    // extent, all inside one epoch so every overwrite carves fresh (the
    // displaced buffers stay deferred): one extent holds ~250 of these
    // 4 KiB-class values, so 320 puts must spill into the reserve while
    // staying far from needing a third extent.
    let big = carve_val(2);
    for round in 0..20usize {
        for k in &hot {
            store.put(&sess, k, &big).unwrap();
        }
        let _ = round;
    }
    store.checkpoint();
    let after: Vec<u8> = (0..stats.extent_count)
        .map(|e| incll_pmem::superblock::extent_owner(&arena, e))
        .collect();
    assert_eq!(
        owners, after,
        "the reserve extent must absorb renewed pressure before any fresh \
         claim touches the owner table"
    );
    assert_eq!(store.get(&sess, &hot[0]), Some(big));
}
/// matrix crash point, re-run with `persistence_granularity` ∈ {0, 256,
/// 4096} and recovery workers ∈ {1, 4}, must land on the identical
/// per-shard model, the identical per-shard report, and the identical
/// arena bytes as the eager (granularity 0, sequential) baseline. The
/// histories crash only at quiescent points, where every staging buffer
/// has drained — exactly the guarantee the buffered path makes.
#[test]
fn granularity_sweep_recovers_byte_identical() {
    const GRAN_SWEEP: &[usize] = &[0, 256, 4096];
    for &point in CRASH_POINTS {
        let baseline = run_cell(4, point, 1, 1, 0);
        for &gran in GRAN_SWEEP {
            for &workers in &[1usize, 4] {
                if gran == 0 && workers == 1 {
                    continue; // the baseline itself
                }
                let out = run_cell(4, point, 1, workers, gran);
                assert_eq!(
                    baseline.expect, out.expect,
                    "{point:?} gran={gran} workers={workers}: model must not \
                     depend on the persistence granularity"
                );
                assert_eq!(
                    baseline.per_shard, out.per_shard,
                    "{point:?} gran={gran} workers={workers}: per-shard \
                     epochs/replay must not depend on the granularity"
                );
                assert_eq!(
                    baseline.digest, out.digest,
                    "{point:?} gran={gran} workers={workers}: buffered \
                     appends must leave byte-identical recovered media"
                );
            }
        }
    }
}

/// The in-doubt-batch shapes under the same sweep: staged and committed
/// cross-shard batches must resolve identically at every granularity.
#[test]
fn granularity_sweep_preserves_batch_resolution() {
    for commit in [false, true] {
        let baseline = run_batch_cell_g(4, commit, 1, 0);
        for &gran in &[256usize, 4096] {
            for &workers in &[1usize, 4] {
                let out = run_batch_cell_g(4, commit, workers, gran);
                assert_eq!(baseline.got, out.got, "commit={commit} gran={gran}");
                assert_eq!(
                    (baseline.redone, baseline.dropped),
                    (out.redone, out.dropped),
                    "commit={commit} gran={gran} workers={workers}"
                );
                assert_eq!(
                    baseline.digest, out.digest,
                    "commit={commit} gran={gran} workers={workers}: batch \
                     resolution must be byte-identical at every granularity"
                );
            }
        }
    }
}
