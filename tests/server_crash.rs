//! Kill-and-restart semantics of the TCP front-end's commit modes.
//!
//! The durability contract the protocol documentation promises:
//!
//! * **Group** (and per-request) mode: once a PUT's response arrives,
//!   the write's commit record is durable — it survives a crash with
//!   *no* epoch boundary ever taken, replayed from the batch intent at
//!   recovery.
//! * **Async** mode: an acknowledged PUT is durable only after the next
//!   checkpoint. Killed before one, it vanishes wholesale.
//!
//! Both halves run on a tracked arena: the "kill" drops every
//! unpersisted cache line down to an adversarial per-line prefix,
//! exactly the guarantee real hardware gives.

use std::net::TcpListener;
use std::time::Duration;

use incll_repro::prelude::*;
use incll_server::{CommitMode, GroupConfig, Request, Response, Server, ServerConfig};
use incll_ycsb::NetClient;

const KEYS: u64 = 60;

fn tracked() -> PArena {
    PArena::builder()
        .capacity_bytes(64 << 20)
        .tracked(true)
        .build()
        .unwrap()
}

fn options() -> Options {
    Options::new()
        .threads(4)
        .log_bytes_per_thread(2 << 20)
        .shards(2)
}

fn key(tag: u64) -> Vec<u8> {
    tag.to_be_bytes().to_vec()
}

fn val(tag: u64) -> Vec<u8> {
    vec![tag as u8; 32]
}

/// Serves, acks `KEYS` puts under `commit`, then kills the machine
/// (without a checkpoint) and reopens the store.
fn ack_then_crash(arena: &PArena, commit: CommitMode, seed: u64) -> (Store, Session) {
    {
        let (store, _) = Store::open(arena, options()).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut server = Server::start(
            store.clone(),
            listener,
            ServerConfig {
                workers: 2,
                commit,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut client = NetClient::connect(server.local_addr()).unwrap();
        // Pipeline all the puts, then require an Ok ack for every one.
        for i in 0..KEYS {
            client
                .send(&Request::Put {
                    key: key(i),
                    val: val(i),
                })
                .unwrap();
        }
        client.flush().unwrap();
        for i in 0..KEYS {
            assert_eq!(
                client.recv().unwrap(),
                Response::Ok,
                "put {i} must be acknowledged"
            );
        }
        server.shutdown();
        // No checkpoint anywhere: whatever survives, survives on the
        // strength of commit records alone.
    }
    arena.crash_seeded(seed);
    let (store, report) = Store::open(arena, options()).unwrap();
    assert!(!report.created, "the store must be recovered, not re-made");
    let sess = store.session().unwrap();
    (store, sess)
}

#[test]
fn group_committed_acks_survive_a_kill_with_no_checkpoint() {
    let arena = tracked();
    let commit = CommitMode::Group(GroupConfig {
        window: Duration::from_micros(100),
        ..GroupConfig::default()
    });
    let (store, sess) = ack_then_crash(&arena, commit, 0x5EED);
    for i in 0..KEYS {
        assert_eq!(
            store.get(&sess, &key(i)),
            Some(val(i)),
            "group-committed put {i} was acknowledged and must survive"
        );
    }
    // The recovered store keeps working.
    store.put(&sess, &key(999), &val(9)).unwrap();
    assert_eq!(store.get(&sess, &key(999)), Some(val(9)));
}

#[test]
fn per_request_acks_survive_a_kill_with_no_checkpoint() {
    let arena = tracked();
    let (store, sess) = ack_then_crash(&arena, CommitMode::PerRequest, 0xFACE);
    for i in 0..KEYS {
        assert_eq!(
            store.get(&sess, &key(i)),
            Some(val(i)),
            "per-request put {i} was acknowledged durably and must survive"
        );
    }
}

#[test]
fn async_acks_vanish_in_a_kill_before_any_checkpoint() {
    let arena = tracked();
    let (store, sess) = ack_then_crash(&arena, CommitMode::Async, 0xDEAD);
    for i in 0..KEYS {
        assert_eq!(
            store.get(&sess, &key(i)),
            None,
            "async put {i} was acked without a commit record; a crash \
             before the first checkpoint must erase it"
        );
    }
    // ... and the rolled-back store is still a working store.
    store.put(&sess, &key(7), &val(7)).unwrap();
    assert_eq!(store.get(&sess, &key(7)), Some(val(7)));
}
