//! Cross-crate crash-consistency tests — the paper's §5.2 methodology:
//! "intentionally crashing the system at random points, launching a new
//! process, and checking that the system's state matched the state at the
//! beginning of the failed epoch."
//!
//! Everything runs through the public `Store`/`Session` facade, in two
//! registers: the paper's 8-byte payloads (`put_u64`) and variable-length
//! byte-slice values — each crash scenario has both.

use std::collections::BTreeMap;

use incll_repro::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn options() -> Options {
    Options::new().threads(2).log_bytes_per_thread(1 << 20)
}

fn tracked_arena() -> PArena {
    PArena::builder()
        .capacity_bytes(64 << 20)
        .tracked(true)
        .build()
        .unwrap()
}

fn collect(store: &Store, sess: &Session) -> Vec<(Vec<u8>, Vec<u8>)> {
    store.iter(sess).collect()
}

fn model_vec(m: &BTreeMap<Vec<u8>, Vec<u8>>) -> Vec<(Vec<u8>, Vec<u8>)> {
    m.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
}

/// A random op applied to both store and model. Mixes short/long keys (so
/// trie layers participate), and u64/byte-slice values (so both value
/// paths participate).
fn apply_random(
    store: &Store,
    sess: &Session,
    model: &mut BTreeMap<Vec<u8>, Vec<u8>>,
    rng: &mut StdRng,
    key_space: u64,
) {
    let k = rng.gen_range(0..key_space);
    let key: Vec<u8> = if k % 7 == 0 {
        format!("long-key-prefix-{k:08}").into_bytes()
    } else {
        k.to_be_bytes().to_vec()
    };
    match rng.gen_range(0..10) {
        0..=2 => {
            let v: u64 = rng.gen();
            store.put_u64(sess, &key, v);
            model.insert(key, v.to_le_bytes().to_vec());
        }
        3..=5 => {
            let len = rng.gen_range(0..300usize);
            let v: Vec<u8> = (0..len).map(|_| rng.gen_range(0..=255u64) as u8).collect();
            store.put(sess, &key, &v).unwrap();
            model.insert(key, v);
        }
        6..=7 => {
            store.remove(sess, &key);
            model.remove(&key);
        }
        _ => {
            assert_eq!(store.get(sess, &key), model.get(&key).cloned());
        }
    }
}

#[test]
fn hundred_seeded_crashes_match_checkpoints() {
    for seed in 0..40u64 {
        let arena = tracked_arena();
        let (store, _) = Store::open(&arena, options()).unwrap();
        let sess = store.session().unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut model = BTreeMap::new();

        // 1-3 committed epochs.
        for _ in 0..rng.gen_range(1..=3) {
            for _ in 0..rng.gen_range(5..300) {
                apply_random(&store, &sess, &mut model, &mut rng, 150);
            }
            store.checkpoint();
        }
        let checkpoint = model_vec(&model);

        // Doomed epoch, then a seeded crash.
        for _ in 0..rng.gen_range(1..300) {
            apply_random(&store, &sess, &mut model, &mut rng, 150);
        }
        drop(sess);
        drop(store);
        arena.crash_seeded(seed.wrapping_mul(0x9E37_79B9) + 1);

        let (store, report) = Store::open(&arena, options()).unwrap();
        assert!(!report.created);
        let sess = store.session().unwrap();
        assert_eq!(collect(&store, &sess), checkpoint, "seed {seed}");
    }
}

#[test]
fn crash_chain_with_work_between_crashes() {
    // Crash, recover, commit new work, crash again — repeatedly.
    let arena = tracked_arena();
    let mut rng = StdRng::seed_from_u64(77);
    let mut model = BTreeMap::new();

    let (store, _) = Store::open(&arena, options()).unwrap();
    {
        let sess = store.session().unwrap();
        for _ in 0..200 {
            apply_random(&store, &sess, &mut model, &mut rng, 100);
        }
        store.checkpoint();
    }
    drop(store);
    let mut checkpoint = model_vec(&model);

    for round in 0..6 {
        // Doomed work + crash.
        {
            let (store, _) = Store::open(&arena, options()).unwrap();
            let sess = store.session().unwrap();
            let mut doomed = model.clone();
            for _ in 0..rng.gen_range(1..150) {
                apply_random(&store, &sess, &mut doomed, &mut rng, 100);
            }
        }
        arena.crash_seeded(round * 13 + 5);

        // Recover, verify, commit fresh work. The completed checkpoint of
        // the previous round compacted the failed-epoch set, so only the
        // epochs failed since then are recorded (the doomed epoch, plus
        // the open-time epoch recovery conservatively records).
        let (store, report) = Store::open(&arena, options()).unwrap();
        assert!(!report.failed_epochs.is_empty());
        assert!(
            report.failed_epochs.len() <= 3,
            "round {round}: checkpoints must compact the failed-epoch set, \
             got {:?}",
            report.failed_epochs
        );
        let sess = store.session().unwrap();
        assert_eq!(collect(&store, &sess), checkpoint, "round {round}");
        for _ in 0..rng.gen_range(1..100) {
            apply_random(&store, &sess, &mut model, &mut rng, 100);
        }
        store.checkpoint();
        checkpoint = model_vec(&model);
    }
}

#[test]
fn immediate_crash_after_recovery_is_safe() {
    // Crash during the very first epoch after a recovery (recovery writes
    // themselves are unflushed and must replay idempotently).
    let arena = tracked_arena();
    let mut model = BTreeMap::new();
    {
        let (store, _) = Store::open(&arena, options()).unwrap();
        let sess = store.session().unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..300 {
            apply_random(&store, &sess, &mut model, &mut rng, 80);
        }
        store.checkpoint();
        let mut doomed = model.clone();
        for _ in 0..100 {
            apply_random(&store, &sess, &mut doomed, &mut rng, 80);
        }
    }
    let checkpoint = model_vec(&model);
    for i in 0..8u64 {
        arena.crash_seeded(1000 + i);
        let (store, _) = Store::open(&arena, options()).unwrap();
        let sess = store.session().unwrap();
        // Touch some nodes (partial lazy recovery), then crash again.
        for k in 0..20u64 {
            store.get(&sess, &k.to_be_bytes());
        }
    }
    arena.crash_seeded(9999);
    let (store, _) = Store::open(&arena, options()).unwrap();
    let sess = store.session().unwrap();
    assert_eq!(collect(&store, &sess), checkpoint);
}

#[test]
fn crash_with_multithreaded_doomed_epoch() {
    // Multiple sessions mutate during the doomed epoch; the crash happens
    // after they quiesce (the simulated power failure is a whole-machine
    // event; in-flight ops either completed their stores or not, which the
    // per-line cuts model).
    let arena = tracked_arena();
    let (store, _) = Store::open(&arena, options()).unwrap();
    {
        let sess = store.session().unwrap();
        for i in 0..400u64 {
            store.put_u64(&sess, &i.to_be_bytes(), i);
        }
    }
    store.checkpoint();

    std::thread::scope(|s| {
        for tid in 0..2usize {
            let store = store.clone();
            s.spawn(move || {
                let sess = store.session().unwrap();
                let mut rng = StdRng::seed_from_u64(tid as u64);
                for _ in 0..500 {
                    let k = rng.gen_range(0..400u64).to_be_bytes();
                    match rng.gen_range(0..4) {
                        0 => {
                            store.put_u64(&sess, &k, rng.gen());
                        }
                        1 => {
                            store
                                .put(&sess, &k, &vec![1u8; rng.gen_range(0..200)])
                                .unwrap();
                        }
                        2 => {
                            store.remove(&sess, &k);
                        }
                        _ => {
                            store.get(&sess, &k);
                        }
                    }
                }
            });
        }
    });
    drop(store);
    arena.crash_seeded(31337);

    let (store, _) = Store::open(&arena, options()).unwrap();
    let sess = store.session().unwrap();
    for i in 0..400u64 {
        assert_eq!(store.get_u64(&sess, &i.to_be_bytes()), Some(i), "key {i}");
    }
}

#[test]
fn crash_rolls_every_shard_back_to_the_same_checkpoint() {
    // The all-domains barrier (`Store::checkpoint`): when only the
    // barrier is used, the doomed epoch touches all shards, the per-line
    // crash cuts land "between" their flushes, and every shard must still
    // recover to the same barrier state. (Independent per-shard
    // boundaries are exercised below and in the proptest matrix.)
    for seed in 0..20u64 {
        let arena = tracked_arena();
        let opts = options().shards(4);
        let (store, _) = Store::open(&arena, opts.clone()).unwrap();
        let mut model = BTreeMap::new();
        {
            let sess = store.session().unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..250 {
                apply_random(&store, &sess, &mut model, &mut rng, 200);
            }
            store.checkpoint();
            // Doomed work, forced onto every shard.
            let mut touched = [false; 4];
            let mut doomed = model.clone();
            let mut i = 0u64;
            while !touched.iter().all(|&t| t) || i < 200 {
                let key = (seed * 100_000 + i).to_be_bytes();
                touched[store.shard_of(&key)] = true;
                store.put_u64(&sess, &key, i);
                doomed.insert(key.to_vec(), i.to_le_bytes().to_vec());
                i += 1;
            }
        }
        drop(store);
        arena.crash_seeded(seed.wrapping_mul(0x5851_F42D) + 3);

        let (store, report) = Store::open(&arena, opts).unwrap();
        // One failed epoch for the whole store — shards cannot diverge.
        assert!(!report.created);
        assert_eq!(report.per_shard.len(), 4);
        assert_eq!(
            report
                .per_shard
                .iter()
                .map(|s| s.replayed_entries)
                .sum::<u64>(),
            report.replayed_entries,
            "per-shard attribution must cover every replayed entry"
        );
        let sess = store.session().unwrap();
        assert_eq!(collect(&store, &sess), model_vec(&model), "seed {seed}");
        // Per-shard view: each shard tree holds exactly the checkpointed
        // keys that route to it.
        for s in 0..4 {
            let shard = store.masstree().shard(s);
            let mut keys = Vec::new();
            shard.scan_bytes(sess.ctx(), b"", usize::MAX, &mut |k, _| {
                keys.push(k.to_vec())
            });
            let expect: Vec<Vec<u8>> = model
                .keys()
                .filter(|k| store.shard_of(k) == s)
                .cloned()
                .collect();
            assert_eq!(keys, expect, "seed {seed}, shard {s}");
        }
    }
}

#[test]
fn per_shard_checkpoints_give_independent_crash_boundaries() {
    // The epoch-domain claim: `checkpoint_shard(s)` makes exactly shard
    // s's writes durable. After a crash, a shard that checkpointed keeps
    // its recent writes while a shard that did not rolls back to the
    // older barrier — per-key durability is unchanged, but the shards'
    // points-in-time are now independent.
    for seed in 0..20u64 {
        let arena = tracked_arena();
        let opts = options().shards(2);
        let (store, _) = Store::open(&arena, opts.clone()).unwrap();
        // A handful of keys per shard.
        let keys_of = |s: usize| -> Vec<Vec<u8>> {
            (0u64..)
                .map(|i| i.to_be_bytes().to_vec())
                .filter(|k| store.shard_of(k) == s)
                .take(30)
                .collect()
        };
        let (keys0, keys1) = (keys_of(0), keys_of(1));
        {
            let sess = store.session().unwrap();
            for k in keys0.iter().chain(&keys1) {
                store.put_u64(&sess, k, 1);
            }
            store.checkpoint(); // barrier: epoch boundary B for both

            // Phase 2: both shards write; ONLY shard 0 checkpoints.
            for k in keys0.iter().chain(&keys1) {
                store.put_u64(&sess, k, 2);
            }
            store.checkpoint_shard(0);

            // Phase 3: both shards write again; nobody checkpoints.
            for k in keys0.iter().chain(&keys1) {
                store.put_u64(&sess, k, 3);
            }
        }
        drop(store);
        arena.crash_seeded(seed * 31 + 11);

        let (store, report) = Store::open(&arena, opts).unwrap();
        assert_eq!(report.per_shard.len(), 2);
        // Create seals the mkfs epoch, so execution starts at epoch 2.
        assert_eq!(report.per_shard[0].failed_epoch, 4, "shard 0: B + own");
        assert_eq!(report.per_shard[1].failed_epoch, 3, "shard 1: B only");
        let sess = store.session().unwrap();
        for k in &keys0 {
            assert_eq!(
                store.get_u64(&sess, k),
                Some(2),
                "seed {seed}: shard 0 recovers to its own (newer) boundary"
            );
        }
        for k in &keys1 {
            assert_eq!(
                store.get_u64(&sess, k),
                Some(1),
                "seed {seed}: shard 1 rolls back to the barrier"
            );
        }
    }
}

#[test]
fn value_buffers_revert_with_contents_intact() {
    // The §5 EBR argument: buffers referenced at the epoch boundary are
    // never overwritten during the next epoch, so reverted pointers see
    // intact contents.
    let arena = tracked_arena();
    let (store, _) = Store::open(&arena, options()).unwrap();
    {
        let sess = store.session().unwrap();
        for i in 0..200u64 {
            store.put_u64(&sess, &i.to_be_bytes(), i * 7);
        }
    }
    store.checkpoint();
    {
        let sess = store.session().unwrap();
        // Update every key several times (buffer churn + reuse pressure).
        for round in 0..3u64 {
            for i in 0..200u64 {
                store.put_u64(&sess, &i.to_be_bytes(), round * 1000 + i);
            }
        }
    }
    drop(store);
    arena.crash_seeded(404);
    let (store, _) = Store::open(&arena, options()).unwrap();
    let sess = store.session().unwrap();
    for i in 0..200u64 {
        assert_eq!(
            store.get_u64(&sess, &i.to_be_bytes()),
            Some(i * 7),
            "key {i}"
        );
    }
}

#[test]
fn byte_value_buffers_revert_with_contents_intact() {
    // Byte-value twin of the above: churn crosses size classes in both
    // directions before the crash.
    let arena = tracked_arena();
    let val = |i: u64, round: u64| -> Vec<u8> {
        let len = ((i * 13 + round * 101) % 500) as usize;
        (0..len).map(|j| (i as u8).wrapping_add(j as u8)).collect()
    };
    let (store, _) = Store::open(&arena, options()).unwrap();
    {
        let sess = store.session().unwrap();
        for i in 0..200u64 {
            store.put(&sess, &i.to_be_bytes(), &val(i, 0)).unwrap();
        }
    }
    store.checkpoint();
    {
        let sess = store.session().unwrap();
        for round in 1..4u64 {
            for i in 0..200u64 {
                store.put(&sess, &i.to_be_bytes(), &val(i, round)).unwrap();
            }
        }
    }
    drop(store);
    arena.crash_seeded(405);
    let (store, _) = Store::open(&arena, options()).unwrap();
    let sess = store.session().unwrap();
    for i in 0..200u64 {
        assert_eq!(
            store.get(&sess, &i.to_be_bytes()),
            Some(val(i, 0)),
            "key {i}"
        );
    }
}

#[test]
fn full_shard_fails_cross_shard_batch_cleanly() {
    // A cross-shard batch with a put on a shard whose extent pool is
    // exhausted must fail as a whole *before* anything durable happens:
    // no intent in any surviving shard's log, no batch id consumed, no
    // commit record — and the other shard's contents are untouched both
    // live and across a crash.
    use incll_pmem::superblock;

    let arena = PArena::builder()
        .capacity_bytes(16 << 20)
        .tracked(true)
        .build()
        .unwrap();
    let opts = || {
        Options::new()
            .threads(2)
            .log_bytes_per_thread(1 << 20)
            .shards(2)
    };
    let (store, _) = Store::open(&arena, opts()).unwrap();
    let sess = store.session().unwrap();
    let key_on = |shard: usize, tag: u64| -> Vec<u8> {
        (0u64..)
            .map(|i| format!("k{tag}-{i}").into_bytes())
            .find(|k| store.shard_of(k) == shard)
            .unwrap()
    };

    // Baseline: one durable key per shard, plus a working set of shard-0
    // keys to overwrite (updates only — no splits — so exhaustion always
    // surfaces as a typed value-buffer error).
    let k1a = key_on(1, 100);
    store.put(&sess, &k1a, b"alpha").unwrap();
    let hot: Vec<Vec<u8>> = (0..32).map(|t| key_on(0, t)).collect();
    for k in &hot {
        store.put(&sess, k, b"seed").unwrap();
    }
    store.checkpoint();

    // Exhaust shard 0's pool: overwrites allocate fresh value buffers
    // while the freed ones sit in pending until a boundary we never run.
    let big = vec![0xabu8; 3000];
    let mut i = 0usize;
    let err = loop {
        match store.put(&sess, &hot[i % hot.len()], &big) {
            Ok(_) => i += 1,
            Err(e) => break e,
        }
    };
    assert!(
        matches!(err, Error::Pmem(incll_pmem::Error::OutOfMemory { .. })),
        "exhaustion must be typed, got {err:?}"
    );

    // The cross-shard batch: a fresh shard-1 key plus a put on the full
    // shard. The whole batch must fail with the same typed error.
    let k1b = key_on(1, 101);
    let id_before = arena.pread_u64(superblock::SB_BATCH_NEXT_ID);
    let mut batch = sess.batch();
    batch.put(&k1b, b"beta").unwrap();
    batch.put(&hot[0], &big).unwrap();
    match batch.commit() {
        Err(Error::Pmem(incll_pmem::Error::OutOfMemory { .. })) => {}
        other => panic!("expected OutOfMemory, got {other:?}"),
    }

    // Nothing durable was touched: no id consumed, every slot empty, the
    // shard-1 half of the batch invisible, prior contents intact.
    assert_eq!(arena.pread_u64(superblock::SB_BATCH_NEXT_ID), id_before);
    for s in 0..superblock::BATCH_SLOTS {
        assert_eq!(superblock::batch_slot(&arena, s), (0, 0));
    }
    assert_eq!(store.get(&sess, &k1b), None, "failed batch must not apply");
    assert_eq!(store.get(&sess, &k1a).as_deref(), Some(&b"alpha"[..]));

    // And across a crash: no intent leaked into shard 1's log, so
    // recovery redoes and drops nothing, and shard 1 is byte-stable.
    drop(sess);
    drop(store);
    arena.crash_seeded(1009);
    let (store, report) = Store::open(&arena, opts()).unwrap();
    let sess = store.session().unwrap();
    for sr in &report.per_shard {
        assert_eq!(sr.batches_redone, 0, "no batch may be redone");
        assert_eq!(sr.batches_dropped, 0, "no intent may have leaked");
    }
    assert_eq!(store.get(&sess, &k1b), None);
    assert_eq!(store.get(&sess, &k1a).as_deref(), Some(&b"alpha"[..]));
    for k in &hot {
        assert_eq!(
            store.get(&sess, k).as_deref(),
            Some(&b"seed"[..]),
            "shard-0 baseline must revert to its checkpoint"
        );
    }
}
