//! Cross-crate crash-consistency tests — the paper's §5.2 methodology:
//! "intentionally crashing the system at random points, launching a new
//! process, and checking that the system's state matched the state at the
//! beginning of the failed epoch."

use std::collections::BTreeMap;

use incll_repro::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CONFIG: DurableConfig = DurableConfig {
    threads: 2,
    log_bytes_per_thread: 1 << 20,
    incll_enabled: true,
};

fn tracked_arena() -> PArena {
    PArena::builder()
        .capacity_bytes(64 << 20)
        .tracked(true)
        .build()
        .unwrap()
}

fn collect(tree: &DurableMasstree, ctx: &DCtx) -> Vec<(Vec<u8>, u64)> {
    let mut out = Vec::new();
    tree.scan(ctx, b"", usize::MAX, &mut |k, v| out.push((k.to_vec(), v)));
    out
}

fn model_vec(m: &BTreeMap<Vec<u8>, u64>) -> Vec<(Vec<u8>, u64)> {
    m.iter().map(|(k, v)| (k.clone(), *v)).collect()
}

/// A random op applied to both tree and model.
fn apply_random(
    tree: &DurableMasstree,
    ctx: &DCtx,
    model: &mut BTreeMap<Vec<u8>, u64>,
    rng: &mut StdRng,
    key_space: u64,
) {
    // Mix short and long keys so trie layers participate.
    let k = rng.gen_range(0..key_space);
    let key: Vec<u8> = if k % 7 == 0 {
        format!("long-key-prefix-{k:08}").into_bytes()
    } else {
        k.to_be_bytes().to_vec()
    };
    match rng.gen_range(0..10) {
        0..=5 => {
            let v = rng.gen();
            tree.put(ctx, &key, v);
            model.insert(key, v);
        }
        6..=7 => {
            tree.remove(ctx, &key);
            model.remove(&key);
        }
        _ => {
            assert_eq!(tree.get(ctx, &key), model.get(&key).copied());
        }
    }
}

#[test]
fn hundred_seeded_crashes_match_checkpoints() {
    for seed in 0..40u64 {
        let arena = tracked_arena();
        superblock::format(&arena);
        let tree = DurableMasstree::create(&arena, CONFIG.clone()).unwrap();
        let ctx = tree.thread_ctx(0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut model = BTreeMap::new();

        // 1-3 committed epochs.
        for _ in 0..rng.gen_range(1..=3) {
            for _ in 0..rng.gen_range(5..300) {
                apply_random(&tree, &ctx, &mut model, &mut rng, 150);
            }
            tree.epoch_manager().advance();
        }
        let checkpoint = model_vec(&model);

        // Doomed epoch, then a seeded crash.
        for _ in 0..rng.gen_range(1..300) {
            apply_random(&tree, &ctx, &mut model, &mut rng, 150);
        }
        drop(ctx);
        drop(tree);
        arena.crash_seeded(seed.wrapping_mul(0x9E37_79B9) + 1);

        let (tree, _) = DurableMasstree::open(&arena, CONFIG.clone()).unwrap();
        let ctx = tree.thread_ctx(0);
        assert_eq!(collect(&tree, &ctx), checkpoint, "seed {seed}");
    }
}

#[test]
fn crash_chain_with_work_between_crashes() {
    // Crash, recover, commit new work, crash again — repeatedly.
    let arena = tracked_arena();
    superblock::format(&arena);
    let mut rng = StdRng::seed_from_u64(77);
    let mut model = BTreeMap::new();

    let tree = DurableMasstree::create(&arena, CONFIG.clone()).unwrap();
    {
        let ctx = tree.thread_ctx(0);
        for _ in 0..200 {
            apply_random(&tree, &ctx, &mut model, &mut rng, 100);
        }
        tree.epoch_manager().advance();
    }
    drop(tree);
    let mut checkpoint = model_vec(&model);

    for round in 0..6 {
        // Doomed work + crash.
        {
            let (tree, _) = DurableMasstree::open(&arena, CONFIG.clone()).unwrap();
            let ctx = tree.thread_ctx(0);
            let mut doomed = model.clone();
            for _ in 0..rng.gen_range(1..150) {
                apply_random(&tree, &ctx, &mut doomed, &mut rng, 100);
            }
        }
        arena.crash_seeded(round * 13 + 5);

        // Recover, verify, commit fresh work.
        let (tree, report) = DurableMasstree::open(&arena, CONFIG.clone()).unwrap();
        assert!(report.failed_epochs.len() as u64 > round);
        let ctx = tree.thread_ctx(0);
        assert_eq!(collect(&tree, &ctx), checkpoint, "round {round}");
        for _ in 0..rng.gen_range(1..100) {
            apply_random(&tree, &ctx, &mut model, &mut rng, 100);
        }
        tree.epoch_manager().advance();
        checkpoint = model_vec(&model);
    }
}

#[test]
fn immediate_crash_after_recovery_is_safe() {
    // Crash during the very first epoch after a recovery (recovery writes
    // themselves are unflushed and must replay idempotently).
    let arena = tracked_arena();
    superblock::format(&arena);
    let mut model = BTreeMap::new();
    {
        let tree = DurableMasstree::create(&arena, CONFIG.clone()).unwrap();
        let ctx = tree.thread_ctx(0);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..300 {
            apply_random(&tree, &ctx, &mut model, &mut rng, 80);
        }
        tree.epoch_manager().advance();
        let mut doomed = model.clone();
        for _ in 0..100 {
            apply_random(&tree, &ctx, &mut doomed, &mut rng, 80);
        }
    }
    let checkpoint = model_vec(&model);
    for i in 0..8u64 {
        arena.crash_seeded(1000 + i);
        let (tree, _) = DurableMasstree::open(&arena, CONFIG.clone()).unwrap();
        let ctx = tree.thread_ctx(0);
        // Touch some nodes (partial lazy recovery), then crash again.
        for k in 0..20u64 {
            tree.get(&ctx, &k.to_be_bytes());
        }
    }
    arena.crash_seeded(9999);
    let (tree, _) = DurableMasstree::open(&arena, CONFIG.clone()).unwrap();
    let ctx = tree.thread_ctx(0);
    assert_eq!(collect(&tree, &ctx), checkpoint);
}

#[test]
fn crash_with_multithreaded_doomed_epoch() {
    // Multiple threads mutate during the doomed epoch; the crash happens
    // after they quiesce (the simulated power failure is a whole-machine
    // event; in-flight ops either completed their stores or not, which the
    // per-line cuts model).
    let arena = tracked_arena();
    superblock::format(&arena);
    let tree = DurableMasstree::create(&arena, CONFIG.clone()).unwrap();
    {
        let ctx = tree.thread_ctx(0);
        for i in 0..400u64 {
            tree.put(&ctx, &i.to_be_bytes(), i);
        }
    }
    tree.epoch_manager().advance();

    std::thread::scope(|s| {
        for tid in 0..2usize {
            let tree = tree.clone();
            s.spawn(move || {
                let ctx = tree.thread_ctx(tid);
                let mut rng = StdRng::seed_from_u64(tid as u64);
                for _ in 0..500 {
                    let k = rng.gen_range(0..400u64).to_be_bytes();
                    match rng.gen_range(0..3) {
                        0 => {
                            tree.put(&ctx, &k, rng.gen());
                        }
                        1 => {
                            tree.remove(&ctx, &k);
                        }
                        _ => {
                            tree.get(&ctx, &k);
                        }
                    }
                }
            });
        }
    });
    drop(tree);
    arena.crash_seeded(31337);

    let (tree, _) = DurableMasstree::open(&arena, CONFIG.clone()).unwrap();
    let ctx = tree.thread_ctx(0);
    for i in 0..400u64 {
        assert_eq!(tree.get(&ctx, &i.to_be_bytes()), Some(i), "key {i}");
    }
}

#[test]
fn value_buffers_revert_with_contents_intact() {
    // The §5 EBR argument: buffers referenced at the epoch boundary are
    // never overwritten during the next epoch, so reverted pointers see
    // intact contents.
    let arena = tracked_arena();
    superblock::format(&arena);
    let tree = DurableMasstree::create(&arena, CONFIG.clone()).unwrap();
    {
        let ctx = tree.thread_ctx(0);
        for i in 0..200u64 {
            tree.put(&ctx, &i.to_be_bytes(), i * 7);
        }
    }
    tree.epoch_manager().advance();
    {
        let ctx = tree.thread_ctx(0);
        // Update every key several times (buffer churn + reuse pressure).
        for round in 0..3u64 {
            for i in 0..200u64 {
                tree.put(&ctx, &i.to_be_bytes(), round * 1000 + i);
            }
        }
    }
    drop(tree);
    arena.crash_seeded(404);
    let (tree, _) = DurableMasstree::open(&arena, CONFIG.clone()).unwrap();
    let ctx = tree.thread_ctx(0);
    for i in 0..200u64 {
        assert_eq!(tree.get(&ctx, &i.to_be_bytes()), Some(i * 7), "key {i}");
    }
}
