//! Integration tests for the TCP front-end: pipelining, response
//! ordering, write ordering, backpressure, and the full request
//! surface over real sockets.
//!
//! The ordering tests are the load-bearing ones, and they check two
//! distinct promises. *Response* order: grouped writes complete on the
//! committer thread while reads complete on the connection's worker,
//! so only the per-connection reorder buffer stands between that
//! concurrency and a client seeing response N+1 before response N.
//! *Write* order: a connection is pinned to one worker and its grouped
//! writes drain through the committer queue FIFO, so pipelined writes
//! to one key must resolve to the last one issued — in every commit
//! mode.

use std::net::TcpListener;
use std::time::Duration;

use incll_repro::prelude::*;
use incll_server::{BatchOp, CommitMode, GroupConfig, Request, Response, Server, ServerConfig};
use incll_ycsb::NetClient;

fn arena() -> PArena {
    PArena::builder().capacity_bytes(64 << 20).build().unwrap()
}

fn serve(store: &Store, commit: CommitMode, workers: usize) -> Server {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    Server::start(
        store.clone(),
        listener,
        ServerConfig {
            workers,
            commit,
            ..ServerConfig::default()
        },
    )
    .unwrap()
}

fn group_mode() -> CommitMode {
    CommitMode::Group(GroupConfig {
        window: Duration::from_micros(100),
        ..GroupConfig::default()
    })
}

fn key(tag: u64) -> Vec<u8> {
    tag.to_be_bytes().to_vec()
}

fn val(tag: u64) -> Vec<u8> {
    let mut v = vec![0u8; 24];
    v[..8].copy_from_slice(&tag.to_le_bytes());
    v
}

#[test]
fn concurrent_pipelined_clients_see_responses_in_request_order() {
    let arena = arena();
    let options = Options::new()
        .threads(6)
        .log_bytes_per_thread(4 << 20)
        .shards(2);
    let (store, _) = Store::open(&arena, options).unwrap();
    let server = serve(&store, group_mode(), 3);
    let addr = server.local_addr();

    // Preload 100 keys through a durable BATCH.
    let mut setup = NetClient::connect(addr).unwrap();
    let ops = (0..100u64)
        .map(|i| BatchOp::Put {
            key: key(i),
            val: val(i),
        })
        .collect();
    assert!(matches!(
        setup.call(&Request::Batch { ops }).unwrap(),
        Response::Committed(_)
    ));

    // Four clients, each pipelining a deterministic interleaving of
    // gets (answer known in advance) and grouped puts (answer Ok).
    std::thread::scope(|s| {
        for c in 0u64..4 {
            s.spawn(move || {
                let mut client = NetClient::connect(addr).unwrap();
                let n = 300u64;
                let mut expected = Vec::with_capacity(n as usize);
                for i in 0..n {
                    if i % 3 == 0 {
                        // A fresh key per client so clients don't race.
                        let tag = 1_000 + c * 10_000 + i;
                        client
                            .send(&Request::Put {
                                key: key(tag),
                                val: val(tag),
                            })
                            .unwrap();
                        expected.push(Response::Ok);
                    } else {
                        let tag = (c * 7 + i * 13) % 100;
                        client.send(&Request::Get { key: key(tag) }).unwrap();
                        expected.push(Response::Value(val(tag)));
                    }
                }
                client.flush().unwrap();
                for (i, want) in expected.iter().enumerate() {
                    let got = client.recv().unwrap();
                    assert_eq!(&got, want, "client {c}: response {i} out of order or wrong");
                }
            });
        }
    });
}

#[test]
fn a_malformed_frame_gets_a_typed_error_in_order_and_the_stream_continues() {
    let arena = arena();
    let options = Options::new().threads(5).log_bytes_per_thread(4 << 20);
    let (store, _) = Store::open(&arena, options).unwrap();
    let server = serve(&store, group_mode(), 2);
    let mut client = NetClient::connect(server.local_addr()).unwrap();

    client
        .call(&Request::Put {
            key: key(1),
            val: val(1),
        })
        .unwrap();
    // Hand-craft a frame whose payload is an unknown opcode: framing is
    // intact, so the server can answer it and keep the stream alive.
    // NetClient has no raw hook, so drive a plain TcpStream.
    {
        use std::io::Write as _;
        let mut raw = std::net::TcpStream::connect(server.local_addr()).unwrap();
        raw.write_all(&[1u8, 0, 0, 0, 0xEE]).unwrap(); // unknown opcode 0xEE
        let mut ok = Vec::new();
        incll_server::encode_request(&Request::Get { key: key(1) }, &mut ok);
        raw.write_all(&ok).unwrap();
        raw.flush().unwrap();
        let mut reader = std::io::BufReader::new(raw);
        let first = incll_server::read_frame(&mut reader).unwrap().unwrap();
        match incll_server::decode_response(&first).unwrap() {
            Response::Error(msg) => assert!(msg.contains("opcode"), "got {msg}"),
            other => panic!("expected a typed error, got {other:?}"),
        }
        let second = incll_server::read_frame(&mut reader).unwrap().unwrap();
        assert_eq!(
            incll_server::decode_response(&second).unwrap(),
            Response::Value(val(1)),
            "the stream must survive a malformed (but framed) request"
        );
    }
}

#[test]
fn batch_scan_del_and_stats_cover_the_request_surface() {
    let arena = arena();
    let options = Options::new().threads(5).log_bytes_per_thread(4 << 20);
    let (store, _) = Store::open(&arena, options).unwrap();
    let server = serve(&store, CommitMode::PerRequest, 2);
    let mut client = NetClient::connect(server.local_addr()).unwrap();

    // BATCH commits atomically and reports the batch id.
    let ops = (10..20u64)
        .map(|i| BatchOp::Put {
            key: key(i),
            val: val(i),
        })
        .collect();
    let Response::Committed(id) = client.call(&Request::Batch { ops }).unwrap() else {
        panic!("batch must commit");
    };
    assert!(id > 0);

    // SCAN returns the range in key order.
    let resp = client
        .call(&Request::Scan {
            start: key(10),
            limit: 5,
        })
        .unwrap();
    let Response::Entries(entries) = resp else {
        panic!("scan must return entries");
    };
    assert_eq!(entries.len(), 5);
    let keys: Vec<_> = entries.iter().map(|(k, _)| k.clone()).collect();
    assert_eq!(keys, (10..15u64).map(key).collect::<Vec<_>>());
    assert_eq!(entries[0].1, val(10));

    // DEL is idempotent-Ok; the key is gone afterwards.
    assert_eq!(
        client.call(&Request::Del { key: key(12) }).unwrap(),
        Response::Ok
    );
    assert_eq!(
        client.call(&Request::Get { key: key(12) }).unwrap(),
        Response::NotFound
    );

    // STATS is a JSON object naming the commit mode and request counts.
    let Response::Stats(json) = client.call(&Request::Stats).unwrap() else {
        panic!("stats must answer");
    };
    assert!(json.starts_with('{') && json.ends_with('}'), "got {json}");
    assert!(
        json.contains("\"commit_mode\":\"per_request\""),
        "got {json}"
    );
    assert!(json.contains("\"batches\":1"), "got {json}");

    // An oversized value is a per-request error, not a dead connection.
    let resp = client
        .call(&Request::Put {
            key: key(1),
            val: vec![0u8; MAX_VALUE_BYTES + 1],
        })
        .unwrap();
    assert!(matches!(resp, Response::Error(_)));
    assert_eq!(
        client.call(&Request::Get { key: key(10) }).unwrap(),
        Response::Value(val(10))
    );
}

/// The REVIEW-9 high-severity regression: pipelined writes to one key
/// from one connection used to race across workers (and into the
/// committer) and could commit out of order, letting an *earlier* PUT
/// become the final durable value. Now a connection's requests execute
/// on its pinned worker in sequence order, and in group mode every
/// write class (PUT/DEL/BATCH) drains through the committer queue FIFO
/// — so the last issued write must win, in every commit mode.
#[test]
fn pipelined_same_key_writes_resolve_to_the_last_one_in_every_mode() {
    for commit in [group_mode(), CommitMode::PerRequest, CommitMode::Async] {
        let arena = arena();
        let options = Options::new()
            .threads(8)
            .log_bytes_per_thread(4 << 20)
            .shards(2);
        let (store, _) = Store::open(&arena, options).unwrap();
        let server = serve(&store, commit.clone(), 4);
        let addr = server.local_addr();

        // Several connections, each hammering its own key so the only
        // ordering in question is intra-connection.
        std::thread::scope(|s| {
            for c in 0u64..4 {
                s.spawn(move || {
                    let mut client = NetClient::connect(addr).unwrap();
                    let k = key(5_000 + c);
                    let n = 120u64;
                    for i in 0..n {
                        match i % 10 {
                            3 => client
                                .send(&Request::Batch {
                                    ops: vec![BatchOp::Put {
                                        key: k.clone(),
                                        val: val(i),
                                    }],
                                })
                                .unwrap(),
                            7 => client.send(&Request::Del { key: k.clone() }).unwrap(),
                            _ => client
                                .send(&Request::Put {
                                    key: k.clone(),
                                    val: val(i),
                                })
                                .unwrap(),
                        }
                    }
                    client.flush().unwrap();
                    for i in 0..n {
                        let got = client.recv().unwrap();
                        match i % 10 {
                            3 => assert!(
                                matches!(got, Response::Committed(_)),
                                "conn {c} op {i}: {got:?}"
                            ),
                            _ => assert_eq!(got, Response::Ok, "conn {c} op {i}"),
                        }
                    }
                    // The last op was PUT val(n-1); nothing earlier may
                    // overwrite it after its ack.
                    assert_eq!(
                        client.call(&Request::Get { key: k.clone() }).unwrap(),
                        Response::Value(val(n - 1)),
                        "conn {c}: an earlier pipelined write overtook the last one"
                    );
                });
            }
        });
        drop(server);
    }
}

/// A client that stops reading must stall only its own connection: its
/// responses pile up in the reorder buffer (bounded by the pipeline
/// depth) behind a blocked per-connection writer thread, while grouped
/// commits — which complete on the committer thread — keep acking
/// other connections.
#[test]
fn a_connection_that_stops_reading_does_not_stall_grouped_commits_for_others() {
    let arena = arena();
    let options = Options::new()
        .threads(6)
        .log_bytes_per_thread(4 << 20)
        .shards(2);
    let (store, _) = Store::open(&arena, options).unwrap();
    let server = serve(&store, group_mode(), 2);
    let addr = server.local_addr();

    // Preload 200 keys with ~4 KB values: one SCAN response is ~800 KB,
    // so a few dozen unread SCANs overflow any kernel socket buffer and
    // wedge the slow connection's writer thread for real.
    let big = vec![0xABu8; 4000];
    let mut setup = NetClient::connect(addr).unwrap();
    let ops = (0..200u64)
        .map(|i| BatchOp::Put {
            key: key(i),
            val: big.clone(),
        })
        .collect();
    assert!(matches!(
        setup.call(&Request::Batch { ops }).unwrap(),
        Response::Committed(_)
    ));

    let scans = 48usize;
    let mut slow = NetClient::connect(addr).unwrap();
    for _ in 0..scans {
        slow.send(&Request::Scan {
            start: key(0),
            limit: 200,
        })
        .unwrap();
    }
    slow.flush().unwrap();
    // Let the slow connection's responses back up against the socket.
    std::thread::sleep(Duration::from_millis(200));

    // Meanwhile every grouped write from a healthy connection must ack.
    let mut live = NetClient::connect(addr).unwrap();
    for i in 0..50u64 {
        assert_eq!(
            live.call(&Request::Put {
                key: key(10_000 + i),
                val: val(i),
            })
            .unwrap(),
            Response::Ok,
            "put {i} stalled behind an unrelated slow reader"
        );
    }

    // The slow client finally drains and still gets every response,
    // intact and in order.
    for i in 0..scans {
        let Response::Entries(entries) = slow.recv().unwrap() else {
            panic!("scan {i} answered with the wrong shape");
        };
        assert_eq!(entries.len(), 200, "scan {i}");
        assert_eq!(entries[0].1, big, "scan {i}");
    }
}

/// With a tiny pipeline depth the reader repeatedly pauses (bounding
/// what the connection can pin server-side) and resumes as the writer
/// drains — the stream must still complete, in order, without
/// deadlocking between the backpressure wait and the writer.
#[test]
fn the_pipeline_depth_bound_pauses_and_resumes_without_losing_order() {
    let arena = arena();
    let options = Options::new()
        .threads(5)
        .log_bytes_per_thread(4 << 20)
        .shards(2);
    let (store, _) = Store::open(&arena, options).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let server = Server::start(
        store.clone(),
        listener,
        ServerConfig {
            workers: 2,
            commit: group_mode(),
            pipeline_depth: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let big = vec![0x5Au8; 4000];
    let mut client = NetClient::connect(addr).unwrap();
    assert_eq!(
        client
            .call(&Request::Put {
                key: key(1),
                val: big.clone(),
            })
            .unwrap(),
        Response::Ok
    );

    // Pipeline far more 4 KB GETs than two in-flight slots (or the
    // kernel buffers) can hold before reading anything back.
    let n = 2000usize;
    for _ in 0..n {
        client.send(&Request::Get { key: key(1) }).unwrap();
    }
    client.flush().unwrap();
    for i in 0..n {
        assert_eq!(
            client.recv().unwrap(),
            Response::Value(big.clone()),
            "response {i}"
        );
    }
}

#[test]
fn session_pool_exhaustion_fails_server_start_with_a_typed_timeout() {
    let arena = arena();
    // Pool of 2 sessions; one goes to the test, leaving 1 for a server
    // that needs workers + committer = 3.
    let options = Options::new().threads(2).log_bytes_per_thread(1 << 20);
    let (store, _) = Store::open(&arena, options).unwrap();
    let _held = store.session().unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let err = Server::start(
        store.clone(),
        listener,
        ServerConfig {
            workers: 2,
            commit: group_mode(),
            session_timeout: Duration::from_millis(50),
            ..ServerConfig::default()
        },
    )
    .err()
    .expect("start must fail when the pool cannot cover the workers");
    assert!(
        matches!(err, Error::SessionTimeout { .. }),
        "expected SessionTimeout, got {err:?}"
    );
}
