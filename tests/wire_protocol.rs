//! Property tests for the server's wire codec.
//!
//! The codec is the trust boundary between untrusted sockets and the
//! store, so the properties are adversarial: arbitrary requests and
//! responses must round-trip exactly, and *every* mangling of a valid
//! frame — truncation at any byte, trailing garbage, an unknown tag —
//! must surface as a typed [`WireError`], never a panic or a
//! misdecoded message.
//!
//! [`WireError`]: incll_server::WireError

use incll_server::{
    decode_request, decode_response, encode_request, encode_response, BatchOp, Request, Response,
    WireError,
};
use proptest::prelude::*;

fn bytes(max: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..max)
}

fn arb_request() -> impl Strategy<Value = Request> {
    let op = (any::<bool>(), bytes(24), bytes(48)).prop_map(|(is_put, key, val)| {
        if is_put {
            BatchOp::Put { key, val }
        } else {
            BatchOp::Del { key }
        }
    });
    prop_oneof![
        bytes(24).prop_map(|key| Request::Get { key }),
        (bytes(24), bytes(64)).prop_map(|(key, val)| Request::Put { key, val }),
        bytes(24).prop_map(|key| Request::Del { key }),
        proptest::collection::vec(op, 0..8).prop_map(|ops| Request::Batch { ops }),
        (bytes(24), any::<u32>()).prop_map(|(start, limit)| Request::Scan { start, limit }),
        Just(Request::Stats),
    ]
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        Just(Response::Ok),
        Just(Response::NotFound),
        bytes(40).prop_map(|b| Response::Error(String::from_utf8_lossy(&b).into_owned())),
        bytes(80).prop_map(Response::Value),
        any::<u64>().prop_map(Response::Committed),
        proptest::collection::vec((bytes(16), bytes(24)), 0..6).prop_map(Response::Entries),
        bytes(40).prop_map(|b| Response::Stats(String::from_utf8_lossy(&b).into_owned())),
    ]
}

fn encoded_request(req: &Request) -> Vec<u8> {
    let mut buf = Vec::new();
    encode_request(req, &mut buf);
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn requests_roundtrip(req in arb_request()) {
        let buf = encoded_request(&req);
        let len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
        prop_assert_eq!(len, buf.len() - 4, "header length must match payload");
        prop_assert_eq!(decode_request(&buf[4..]).unwrap(), req);
    }

    #[test]
    fn responses_roundtrip(resp in arb_response()) {
        let mut buf = Vec::new();
        encode_response(&resp, &mut buf);
        prop_assert_eq!(decode_response(&buf[4..]).unwrap(), resp);
    }

    /// Truncating a valid request payload at any point must produce a
    /// typed error, never a panic and never a successful decode.
    #[test]
    fn truncated_requests_error_cleanly(req in arb_request(), cut_sel in any::<u16>()) {
        let buf = encoded_request(&req);
        let payload = &buf[4..];
        let cut = cut_sel as usize % payload.len().max(1);
        if cut < payload.len() {
            let err = decode_request(&payload[..cut]).unwrap_err();
            prop_assert!(matches!(
                err,
                WireError::Truncated { .. } | WireError::Malformed(_)
            ), "cut at {} of {} gave {:?}", cut, payload.len(), err);
        }
    }

    /// Appending any garbage to a valid payload is a typed
    /// `TrailingBytes` error — frames carry exactly one message.
    #[test]
    fn trailing_garbage_is_rejected(req in arb_request(), junk in bytes(16)) {
        if junk.is_empty() {
            return Ok(());
        }
        let buf = encoded_request(&req);
        let mut payload = buf[4..].to_vec();
        let extra = junk.len();
        payload.extend_from_slice(&junk);
        // Variable-length tails (a trailing value/count) may absorb a
        // prefix of the junk into a *failed* parse, but never into a
        // success that silently drops bytes.
        match decode_request(&payload) {
            Ok(decoded) => prop_assert!(
                false,
                "accepted {extra} junk bytes, decoded {decoded:?}"
            ),
            Err(WireError::TrailingBytes { extra: e }) => prop_assert!(e >= 1 && e <= extra),
            Err(_) => {} // typed rejection: fine
        }
    }

    /// Arbitrary byte soup never panics the decoder and, when it is
    /// accepted, re-encodes to exactly the bytes that were decoded
    /// (canonical encoding).
    #[test]
    fn arbitrary_payloads_never_panic_and_accepts_are_canonical(payload in bytes(96)) {
        if let Ok(req) = decode_request(&payload) {
            let re = encoded_request(&req);
            prop_assert_eq!(&re[4..], &payload[..], "decode ∘ encode must be identity");
        }
        let _ = decode_response(&payload); // must not panic either
    }

    /// The first byte alone decides unknown-tag errors.
    #[test]
    fn unknown_tags_are_typed(tag in 7u8..=255, body in bytes(16)) {
        let mut payload = vec![tag];
        payload.extend_from_slice(&body);
        prop_assert_eq!(decode_request(&payload).unwrap_err(), WireError::UnknownOpcode(tag));
        prop_assert_eq!(decode_response(&payload).unwrap_err(), WireError::UnknownStatus(tag));
    }
}
